open Farm_sim
open Farm_core
open Test_util

(* Snapshot-protocol (opacity via global time) invariants:

   - read-only transactions never abort and never enter VALIDATE, asserted
     against the observability counters, under concurrent writers;
   - opacity: a read-only transaction sees one consistent snapshot even
     mid-conflict, with writers transferring value between its reads;
   - determinism: the same seed yields byte-identical traces in each
     protocol mode. *)

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let snap_params = { quick_params with Params.protocol = Params.Snapshot }

let merged c counter =
  Array.fold_left
    (fun acc (st : State.t) -> acc + Farm_obs.Obs.counter st.State.obs counter)
    0 c.Cluster.machines

let validate_phase_count c =
  match List.assoc_opt "validate" (Cluster.merged_phase_hists c) with
  | Some h -> Stats.Hist.count h
  | None -> 0

(* Keep [writers] transfer workers per machine moving value between random
   cell pairs until [stop]. *)
let spawn_transfers c ~cells ~stop =
  Array.iter
    (fun (st : State.t) ->
      for _ = 1 to 2 do
        Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
            let rng = Rng.split st.State.rng in
            let n = Array.length cells in
            while not !stop do
              let a = Rng.int rng n in
              let b = (a + 1 + Rng.int rng (n - 1)) mod n in
              (match
                 Api.run_retry ~attempts:4 st ~thread:0 (fun tx ->
                     let va = read_int tx cells.(a) in
                     let vb = read_int tx cells.(b) in
                     write_int tx cells.(a) (va - 1);
                     write_int tx cells.(b) (vb + 1))
               with
              | Ok () | Error _ -> ());
              Proc.sleep (Time.us (20 + Rng.int rng 60))
            done)
      done)
    c.Cluster.machines

(* Read-only transactions under write pressure: every single attempt (no
   retry) must succeed, and the VALIDATE machinery must never engage. *)
let ro_never_aborts_no_validate () =
  let c = mk_cluster ~machines:5 ~params:snap_params () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:16 ~init:100 in
  let validate_before = validate_phase_count c in
  let ro_before = merged c Farm_obs.Obs.C_ro_commit in
  let stop = ref false in
  spawn_transfers c ~cells ~stop;
  let ro_runs = ref 0 and ro_failures = ref 0 in
  Array.iter
    (fun (st : State.t) ->
      Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
          let rng = Rng.split st.State.rng in
          while not !stop do
            (* multi-object read-only transaction, single attempt *)
            (match
               Api.run st ~thread:1 (fun tx ->
                   let n = Array.length cells in
                   let i = Rng.int rng n in
                   read_int tx cells.(i)
                   + read_int tx cells.((i + 1) mod n)
                   + read_int tx cells.((i + 2) mod n)
                   |> ignore)
             with
            | Ok () -> incr ro_runs
            | Error _ ->
                incr ro_runs;
                incr ro_failures);
            Proc.sleep (Time.us 50)
          done))
    c.Cluster.machines;
  Cluster.run_for c ~d:(Time.ms 30);
  stop := true;
  Cluster.run_for c ~d:(Time.ms 2);
  check_bool "read-only transactions ran" true (!ro_runs > 100);
  check_int "zero read-only aborts" 0 !ro_failures;
  check_int "zero VALIDATE phases" 0 (validate_phase_count c - validate_before);
  check_int "zero validate-failed aborts" 0 (merged c Farm_obs.Obs.C_abort_validate_failed);
  check_bool "read-only transactions committed locally" true
    (merged c Farm_obs.Obs.C_ro_commit - ro_before >= !ro_runs);
  check_bool "snapshot reads counted" true (merged c Farm_obs.Obs.C_snap_read > 0)

(* Opacity: a reader that straddles a conflicting writer still sees one
   consistent snapshot — the conserved sum — on every single attempt,
   DURING execution, not just at commit. A deliberate pause between the
   two reads widens the race window; version chains must serve the
   pre-conflict values. *)
let consistent_snapshot_mid_conflict () =
  let c = mk_cluster ~machines:5 ~params:snap_params () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:8 ~init:100 in
  let expect = 8 * 100 in
  let stop = ref false in
  spawn_transfers c ~cells ~stop;
  let reads = ref 0 and bad_sums = ref 0 in
  Array.iter
    (fun (st : State.t) ->
      Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
          while not !stop do
            (match
               Api.run st ~thread:1 (fun tx ->
                   (* half the cells ... *)
                   let s = ref 0 in
                   for i = 0 to 3 do
                     s := !s + read_int tx cells.(i)
                   done;
                   (* ... a pause for writers to commit past us ... *)
                   Proc.sleep (Time.us 40);
                   (* ... and the other half, served from the chains *)
                   for i = 4 to 7 do
                     s := !s + read_int tx cells.(i)
                   done;
                   !s)
             with
            | Ok s ->
                incr reads;
                if s <> expect then incr bad_sums
            | Error _ -> incr bad_sums);
            Proc.sleep (Time.us 30)
          done))
    c.Cluster.machines;
  Cluster.run_for c ~d:(Time.ms 40);
  stop := true;
  Cluster.run_for c ~d:(Time.ms 2);
  check_bool "snapshot sums observed" true (!reads > 100);
  check_int "every mid-conflict snapshot consistent" 0 !bad_sums;
  check_bool "some reads served from version chains" true
    (merged c Farm_obs.Obs.C_snap_chain_read > 0);
  (* the final state is still conserved *)
  check_int "sum conserved" expect (sum_cells c ~machine:0 cells)

(* Version chains are truncated once the cluster watermark passes them:
   the archive must not grow without bound under steady writes. *)
let chains_truncated () =
  let c = mk_cluster ~machines:5 ~params:snap_params () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:8 ~init:100 in
  let stop = ref false in
  spawn_transfers c ~cells ~stop;
  Cluster.run_for c ~d:(Time.ms 30);
  stop := true;
  Cluster.run_for c ~d:(Time.ms 2);
  check_bool "watermark truncation ran" true (merged c Farm_obs.Obs.C_wm_trim > 0);
  (* every live chain node's timestamp is at or above its floor *)
  Array.iter
    (fun (st : State.t) ->
      Hashtbl.iter
        (fun _ (rep : State.replica) ->
          match rep.State.vc with
          | Some vc -> check_bool "chain bounded" true (Verchain.nodes_live vc < 10_000)
          | None -> ())
        st.State.nv.replicas)
    c.Cluster.machines

(* Same seed, same mode => byte-identical traces (the explorer's whole
   event trace and flight recorder), in BOTH protocol modes. *)
let deterministic_per_mode () =
  List.iter
    (fun protocol ->
      let opts =
        { Farm_fault.Explorer.default_opts with duration = Time.ms 20; protocol }
      in
      let o1 = Farm_fault.Explorer.run_one ~opts 7 in
      let o2 = Farm_fault.Explorer.run_one ~opts 7 in
      check_bool "same committed count" true
        (o1.Farm_fault.Explorer.committed = o2.Farm_fault.Explorer.committed);
      check_bool "byte-identical trace" true
        (o1.Farm_fault.Explorer.trace = o2.Farm_fault.Explorer.trace);
      check_bool "byte-identical flight recorder" true
        (o1.Farm_fault.Explorer.recorder = o2.Farm_fault.Explorer.recorder))
    [ Params.Validate_at_commit; Params.Snapshot ]

let suites =
  [
    ( "opacity",
      [
        test "RO transactions never abort, never VALIDATE" ro_never_aborts_no_validate;
        test "consistent snapshot mid-conflict" consistent_snapshot_mid_conflict;
        test "version chains truncated at the watermark" chains_truncated;
        test "same seed, same mode: identical traces" deterministic_per_mode;
      ] );
  ]
