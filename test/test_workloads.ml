open Farm_sim
open Farm_core
open Farm_workloads
open Test_util

let test name fn = Alcotest.test_case name `Quick fn
let slow name fn = Alcotest.test_case name `Slow fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Driver} *)

let driver_measures () =
  let c = mk_cluster ~machines:3 () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:8 ~init:0 in
  let stats =
    Driver.run c ~workers:2 ~duration:(Time.ms 20)
      ~op:(fun ctx ->
        let i = Rng.int ctx.Driver.rng 8 in
        match
          Api.run_retry ~attempts:4 ctx.Driver.st ~thread:ctx.Driver.thread (fun tx ->
              let v = read_int tx cells.(i) in
              write_int tx cells.(i) (v + 1))
        with
        | Ok () -> true
        | Error _ -> false)
  in
  check_bool "ops recorded" true (Stats.Counter.get stats.Driver.ops > 50);
  check_bool "latency recorded" true (Stats.Hist.count stats.Driver.latency > 50);
  (* committed increments must equal the cells' sum *)
  let total = sum_cells c ~machine:0 cells in
  check_int "sum equals committed ops" (Stats.Counter.get stats.Driver.ops) total

let driver_warmup_excluded () =
  let c = mk_cluster ~machines:3 () in
  let stats =
    Driver.run c ~workers:1 ~warmup:(Time.ms 10) ~duration:(Time.ms 10)
      ~op:(fun ctx ->
        Proc.sleep (Time.us 100);
        ignore ctx;
        true)
  in
  (* ~10ms of measurement at ~10 ops/ms/machine max *)
  check_bool "warmup not counted" true (Stats.Counter.get stats.Driver.ops <= 350)

let recovery_time_detection () =
  let stats = Driver.create_stats () in
  (* synthesize a throughput series: 100/ms before failure at 50ms, zero
     for 30ms, then back to 100 *)
  for i = 0 to 49 do
    Stats.Series.add stats.Driver.series ~at:(Time.ms i) 100
  done;
  for i = 80 to 120 do
    Stats.Series.add stats.Driver.series ~at:(Time.ms i) 100
  done;
  match Driver.recovery_time stats ~failure_at:(Time.ms 50) ~fraction:0.8 with
  | Some t ->
      check_bool "detected ~30ms recovery" true
        (Time.to_ms_float t >= 29. && Time.to_ms_float t <= 31.)
  | None -> Alcotest.fail "recovery not detected"

(* {1 TATP} *)

let tatp_fixture =
  lazy
    (let c = mk_cluster ~machines:4 () in
     let t = Tatp.create c ~subscribers:300 ~regions_per_table:1 in
     Tatp.load c t;
     (c, t))

let tatp_loaded () =
  let c, t = Lazy.force tatp_fixture in
  (* every subscriber row exists *)
  let missing = ref 0 in
  Cluster.run_on c ~machine:1 (fun st ->
      for s = 1 to 300 do
        if Farm_kv.Hashtable.lookup_lockfree st t.Tatp.sub (Tatp.key8 s) = None then
          incr missing
      done);
  check_int "all subscribers present" 0 !missing

let tatp_transactions_work () =
  let c, t = Lazy.force tatp_fixture in
  let st = Cluster.machine c 2 in
  Cluster.run_on c ~machine:2 (fun _ ->
      let rng = Rng.create 5 in
      check_bool "get_subscriber_data" true (Tatp.get_subscriber_data st t rng);
      check_bool "get_access_data" true (Tatp.get_access_data st t rng);
      check_bool "get_new_destination" true (Tatp.get_new_destination st ~thread:0 t rng);
      check_bool "update_subscriber_data" true (Tatp.update_subscriber_data st ~thread:0 t rng);
      check_bool "update_location (function-shipped)" true
        (Tatp.update_location st ~thread:0 t rng);
      check_bool "insert_call_forwarding" true (Tatp.insert_call_forwarding st ~thread:0 t rng);
      check_bool "delete_call_forwarding" true (Tatp.delete_call_forwarding st ~thread:0 t rng))

let tatp_update_location_applies () =
  let c, t = Lazy.force tatp_fixture in
  (* ship an update and read the new vlr back *)
  Cluster.run_on c ~machine:3 (fun st ->
      (* find a subscriber whose bucket primary is remote *)
      let primary_of s =
        let bucket =
          t.Tatp.sub.Farm_kv.Hashtable.buckets
            .(Farm_kv.Hashtable.bucket_of t.Tatp.sub (Tatp.key8 s))
        in
        match Txn.ensure_mapping st bucket.Addr.region ~retries:5 with
        | Some info -> info.Wire.primary
        | None -> Alcotest.fail "no mapping"
      in
      let rec pick s = if primary_of s <> st.State.id then s else pick (s + 1) in
      let s = pick 1 in
      let primary = primary_of s in
      check_bool "shipping to remote primary" true (primary <> st.State.id);
      (match
         Comms.call st ~dst:primary ~timeout:(Time.ms 50)
           (Wire.App_call { tag = Tatp.update_location_tag; args = [| s; 31337 |] })
       with
      | Ok (Wire.App_reply { ok }) -> check_bool "shipped ok" true ok
      | _ -> Alcotest.fail "App_call failed");
      match Farm_kv.Hashtable.lookup_lockfree st t.Tatp.sub (Tatp.key8 s) with
      | Some row ->
          check_int "vlr updated" 31337 (Int64.to_int (Bytes.get_int64_le row 0))
      | None -> Alcotest.fail "subscriber vanished")

let tatp_mix_runs () =
  let c, t = Lazy.force tatp_fixture in
  let stats = Driver.run c ~workers:4 ~duration:(Time.ms 30) ~op:(Tatp.op t) in
  let ops = Stats.Counter.get stats.Driver.ops in
  let failures = Stats.Counter.get stats.Driver.failures in
  check_bool "substantial throughput" true (ops > 500);
  check_bool "failure rate under 2%" true (failures * 50 < ops)

let tatp_nonuniform_sids () =
  let _, t = Lazy.force tatp_fixture in
  let rng = Rng.create 77 in
  let counts = Array.make 301 0 in
  for _ = 1 to 20_000 do
    let s = Tatp.random_sid t rng in
    check_bool "in range" true (s >= 1 && s <= 300);
    counts.(s) <- counts.(s) + 1
  done;
  (* TATP's OR-based generator skews toward ids with more set bits *)
  let max_c = Array.fold_left max 0 counts in
  let min_c = Array.fold_left min max_int (Array.sub counts 1 300) in
  check_bool "distribution is skewed" true (max_c > 3 * (min_c + 1))

(* {1 TPC-C} *)

let tpcc_fixture =
  lazy
    (let c = mk_cluster ~machines:4 ~params:{ quick_params with Params.region_size = 1 lsl 20 } () in
     let scale = { Tpcc.warehouses = 2; districts = 3; customers = 8; items = 40 } in
     let t = Tpcc.create c ~scale () in
     Tpcc.load c t;
     (c, t))

let tpcc_loads () =
  let c, t = Lazy.force tpcc_fixture in
  check_bool "ytd consistent after load" true (Tpcc.check_ytd c t);
  check_bool "orders dense after load" true (Tpcc.check_orders c t)

let tpcc_new_order () =
  let c, t = Lazy.force tpcc_fixture in
  let before = Stats.Counter.get t.Tpcc.new_orders in
  let ok = ref false in
  Cluster.run_on c ~machine:1 (fun st ->
      let ctx = { Driver.st; thread = 0; rng = Rng.create 3; worker = 0 } in
      (* retry over the 1% intentional rollbacks *)
      let rec go n = if n = 0 then () else if Tpcc.new_order t ctx ~w:0 then ok := true else go (n - 1) in
      go 10);
  check_bool "new_order committed" true !ok;
  check_bool "counted" true (Stats.Counter.get t.Tpcc.new_orders > before)

let tpcc_payment_preserves_ytd () =
  let c, t = Lazy.force tpcc_fixture in
  Cluster.run_on c ~machine:2 (fun st ->
      let ctx = { Driver.st; thread = 0; rng = Rng.create 9; worker = 0 } in
      for _ = 1 to 10 do
        ignore (Tpcc.payment t ctx ~w:1)
      done);
  check_bool "W_YTD = sum(D_YTD) after payments" true (Tpcc.check_ytd c t)

let tpcc_mix_consistent () =
  let c, t = Lazy.force tpcc_fixture in
  let stats = Driver.run c ~workers:2 ~duration:(Time.ms 40) ~op:(Tpcc.op t) in
  check_bool "mix ran" true (Stats.Counter.get stats.Driver.ops > 30);
  Cluster.run_for c ~d:(Time.ms 20);
  check_bool "ytd invariant holds under full mix" true (Tpcc.check_ytd c t);
  check_bool "orders remain dense" true (Tpcc.check_orders c t)

(* {1 KV lookup workload} *)

let kvlookup_works () =
  let c = mk_cluster ~machines:4 () in
  let t = Kvlookup.create c ~keys:200 ~regions:2 in
  Kvlookup.load c t;
  let stats = Driver.run c ~workers:4 ~duration:(Time.ms 20) ~op:(Kvlookup.op t) in
  check_int "no failures" 0 (Stats.Counter.get stats.Driver.failures);
  check_bool "high lookup rate" true (Stats.Counter.get stats.Driver.ops > 1000);
  (* lock-free reads dominate: commit protocol untouched *)
  let lockfree =
    Array.fold_left
      (fun acc (st : State.t) -> acc + Stats.Counter.get st.State.metrics.lockfree_reads)
      0 c.Cluster.machines
  in
  check_bool "served by lock-free reads" true (lockfree >= Stats.Counter.get stats.Driver.ops)

(* {1 YCSB} *)

let ycsb_profiles_run () =
  let c = mk_cluster ~machines:4 () in
  let t = Ycsb.create c ~keys:300 ~regions:2 in
  Ycsb.load c t;
  List.iter
    (fun profile ->
      let stats =
        Driver.run c ~workers:2 ~duration:(Time.ms 10) ~op:(Ycsb.op profile t)
      in
      check_bool
        (Printf.sprintf "%s makes progress" (Ycsb.profile_name profile))
        true
        (Stats.Counter.get stats.Driver.ops > 20))
    [ Ycsb.A; Ycsb.B; Ycsb.C; Ycsb.D; Ycsb.E; Ycsb.F ]

(* Property: zipf never leaves [0, n), for any n and any rng stream. *)
let ycsb_zipf_bounds =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"zipf in [0, n)" ~count:500
       QCheck.(pair (int_range 1 5000) small_nat)
       (fun (n, seed) ->
         let rng = Rng.create seed in
         let ok = ref true in
         for _ = 1 to 50 do
           let k = Ycsb.zipf rng n in
           if k < 0 || k >= n then ok := false
         done;
         !ok))

(* Bounds regression: n = 1 must always yield key 0 (the recursion bottoms
   out at span <= 1 and the min with n-1 clamps to 0), never -1 or 1. *)
let ycsb_zipf_n1 () =
  let rng = Rng.create 9 in
  for _ = 1 to 500 do
    Alcotest.(check int) "n=1 draws 0" 0 (Ycsb.zipf rng 1)
  done

(* Hot-key mass decreases from the head of the key space to the tail: the
   first octant carries the 40% hot mass, and every octant outweighs the
   last (the trapezoid ramp-down of offset + uniform). Deterministic in the
   fixed seed. *)
let ycsb_zipf_mass_decreasing () =
  let rng = Rng.create 17 in
  let n = 4096 in
  let oct = Array.make 8 0 in
  for _ = 1 to 100_000 do
    let k = Ycsb.zipf rng n in
    oct.(k * 8 / n) <- oct.(k * 8 / n) + 1
  done;
  let pp = String.concat " " (Array.to_list (Array.map string_of_int oct)) in
  Alcotest.(check bool)
    (Printf.sprintf "first octant dominates every other (%s)" pp)
    true
    (Array.for_all (fun c -> oct.(0) > 2 * c) (Array.sub oct 1 7));
  Array.iteri
    (fun i c ->
      if i < 7 then
        Alcotest.(check bool)
          (Printf.sprintf "octant %d (%d) > tail octant (%d)" i c oct.(7))
          true (c > oct.(7)))
    oct;
  let first_half = oct.(0) + oct.(1) + oct.(2) + oct.(3) in
  let second_half = oct.(4) + oct.(5) + oct.(6) + oct.(7) in
  Alcotest.(check bool)
    (Printf.sprintf "first half %d > 2x second half %d" first_half second_half)
    true
    (first_half > 2 * second_half)

let ycsb_zipf_skewed () =
  let rng = Rng.create 3 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    let k = Ycsb.zipf rng 1000 in
    check_bool "in range" true (k >= 0 && k < 1000);
    counts.(k) <- counts.(k) + 1
  done;
  (* the head of the distribution is much hotter than the tail *)
  let head = Array.fold_left ( + ) 0 (Array.sub counts 0 100) in
  let tail = Array.fold_left ( + ) 0 (Array.sub counts 900 100) in
  check_bool
    (Printf.sprintf "zipfian skew (head %d vs tail %d)" head tail)
    true (head > 4 * (tail + 1))

(* {1 Baseline} *)

let baseline_single_machine () =
  let c = Baseline.cluster ~seed:5 () in
  check_int "one machine" 1 (Cluster.n_machines c);
  let r = Cluster.alloc_region_exn c in
  let cell = (alloc_cells c ~region:r.Wire.rid ~n:1 ~init:0).(0) in
  Cluster.run_on c ~machine:0 (fun st ->
      match Api.run_retry st ~thread:0 (fun tx -> write_int tx cell 5) with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%a" Txn.pp_abort e);
  check_int "unreplicated commit works" 5 (read_cell c ~machine:0 cell)

let suites =
  [
    ( "workloads.driver",
      [
        test "measures" driver_measures;
        test "warmup excluded" driver_warmup_excluded;
        test "recovery time detection" recovery_time_detection;
      ] );
    ( "workloads.tatp",
      [
        slow "loaded" tatp_loaded;
        slow "all transactions" tatp_transactions_work;
        slow "function shipping applies" tatp_update_location_applies;
        slow "mix runs" tatp_mix_runs;
        slow "non-uniform sids" tatp_nonuniform_sids;
      ] );
    ( "workloads.tpcc",
      [
        slow "loads consistently" tpcc_loads;
        slow "new_order" tpcc_new_order;
        slow "payment preserves ytd" tpcc_payment_preserves_ytd;
        slow "full mix consistent" tpcc_mix_consistent;
      ] );
    ("workloads.kv", [ test "kvlookup" kvlookup_works ]);
    ( "workloads.ycsb",
      [
        slow "all profiles run" ycsb_profiles_run;
        test "zipf skew" ycsb_zipf_skewed;
        ycsb_zipf_bounds;
        test "zipf n=1 regression" ycsb_zipf_n1;
        test "zipf mass decreasing" ycsb_zipf_mass_decreasing;
      ] );
    ("workloads.baseline", [ test "single machine" baseline_single_machine ]);
  ]
