open Farm_sim
open Farm_core
open Test_util

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bank_load c ~cells ~until =
  let stop = ref false in
  Array.iter
    (fun (st : State.t) ->
      for _ = 0 to 3 do
        Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
            let rng = Rng.split st.State.rng in
            let n = Array.length cells in
            while not !stop do
              let a = Rng.int rng n in
              let b = (a + 1 + Rng.int rng (n - 1)) mod n in
              (match
                 Api.run_retry ~attempts:4 st ~thread:0 (fun tx ->
                     let va = read_int tx cells.(a) in
                     let vb = read_int tx cells.(b) in
                     write_int tx cells.(a) (va - 1);
                     write_int tx cells.(b) (vb + 1))
               with
              | Ok () | Error _ -> ());
              Proc.sleep (Time.us 100)
            done)
      done)
    c.Cluster.machines;
  Cluster.run_until c ~at:until;
  stop := true;
  Cluster.run_for c ~d:(Time.ms 2)

(* Ring logs never exceed capacity, and lazy truncation eventually returns
   the space: reservations guarantee progress (§4). *)
let log_space_bounded () =
  let c = mk_cluster ~machines:5 () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:16 ~init:1000 in
  (* sample log occupancy during the run *)
  let max_used = ref 0 in
  let overflowed = ref false in
  Proc.spawn c.Cluster.engine (fun () ->
      while true do
        Proc.sleep (Time.ms 1);
        Array.iter
          (fun (st : State.t) ->
            Hashtbl.iter
              (fun _ log ->
                let u = Ringlog.used log in
                if u > !max_used then max_used := u;
                if u > Ringlog.capacity log then overflowed := true)
              st.State.nv.logs_in)
          c.Cluster.machines
      done);
  bank_load c ~cells ~until:(Time.ms 60);
  check_bool "logs saw traffic" true (!max_used > 0);
  check_bool "no log ever exceeded capacity" false !overflowed;
  (* after quiescence + a few flush intervals, truncation drained the logs *)
  Cluster.run_for c ~d:(Time.ms 30);
  Array.iter
    (fun (st : State.t) ->
      Hashtbl.iter
        (fun _ log ->
          check_int
            (Printf.sprintf "log %d->%d drained" (Ringlog.sender log) (Ringlog.receiver log))
            0 (Ringlog.used log))
        st.State.nv.logs_in)
    c.Cluster.machines

(* The piggybacked low bound keeps the truncated-id tracking compact. *)
let truncation_tracking_compact () =
  let c = mk_cluster ~machines:4 () in
  let r = Cluster.alloc_region_exn c in
  let cell = (alloc_cells c ~region:r.Wire.rid ~n:1 ~init:0).(0) in
  (* serial transactions from machine 1, thread 0 *)
  Cluster.run_on c ~machine:1 (fun st ->
      for _ = 1 to 80 do
        match
          Api.run_retry st ~thread:0 (fun tx ->
              let v = read_int tx cell in
              write_int tx cell (v + 1))
        with
        | Ok () -> ()
        | Error e -> Fmt.failwith "%a" Txn.pp_abort e
      done);
  Cluster.run_for c ~d:(Time.ms 30);
  (* at the primary, the tracker for coordinator (1,0) has advanced its low
     bound and keeps only a small set above it *)
  let st = Cluster.machine c r.Wire.primary in
  let t =
    State.trunc_track st
      ~coord:(Txid.coord_id (Txid.make ~config:1 ~machine:1 ~thread:0 ~local:0))
  in
  check_bool "low bound advanced" true (t.State.low > 40);
  check_bool "above-set compact" true (Hashtbl.length t.State.above < 20)

(* Precise membership: an evicted-but-alive machine (healed partition)
   cannot commit transactions from its stale configuration, and its stale
   log records never take locks. *)
let evicted_machine_is_harmless () =
  let c = mk_cluster ~machines:6 () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:4 ~init:100 in
  Cluster.run_for c ~d:(Time.ms 5);
  let victim = surviving_machine c ~not_in:[ r.Wire.primary; 0 ] in
  (* partition it away; the lease expires and it is evicted *)
  Cluster.partition c ~group:9 [ victim ];
  Cluster.run_for c ~d:(Time.ms 120);
  let st0 = Cluster.machine c 0 in
  check_bool "evicted" false (Config.is_member st0.State.config victim);
  check_int "configuration advanced" 2 st0.State.config.Config.id;
  (* heal the partition: the zombie still believes the old configuration *)
  Cluster.partition c ~group:0 [ victim ];
  let zombie = Cluster.machine c victim in
  check_int "zombie on stale config" 1 zombie.State.config.Config.id;
  let result = ref None in
  Proc.spawn ~ctx:zombie.State.ctx c.Cluster.engine (fun () ->
      result :=
        Some
          (Api.run zombie ~thread:0 (fun tx ->
               let v = read_int tx cells.(0) in
               write_int tx cells.(0) (v + 1_000_000))));
  Cluster.run_for c ~d:(Time.ms 100);
  (* the transaction must not have committed its stale write *)
  let v = read_cell c ~machine:0 cells.(0) in
  check_bool "stale write never applied" true (v < 1_000_000);
  check_bool "zombie tx did not report success" true
    (match !result with Some (Ok ()) -> false | _ -> true);
  (* and the cells are not left locked *)
  Cluster.run_on c ~machine:0 (fun st ->
      match Api.run_retry st ~thread:0 (fun tx -> write_int tx cells.(0) 7) with
      | Ok () -> ()
      | Error e -> Fmt.failwith "locked by zombie: %a" Txn.pp_abort e)

(* All surviving machines converge to the same configuration. *)
let config_convergence () =
  let c = mk_cluster ~machines:7 () in
  ignore (Cluster.alloc_region_exn c);
  Cluster.run_for c ~d:(Time.ms 5);
  Cluster.kill c 3;
  Cluster.run_for c ~d:(Time.ms 100);
  Cluster.kill c 5;
  Cluster.run_for c ~d:(Time.ms 150);
  let ids =
    Array.to_list c.Cluster.machines
    |> List.filter (fun (st : State.t) -> st.State.alive)
    |> List.map (fun (st : State.t) -> st.State.config.Config.id)
    |> List.sort_uniq compare
  in
  check_int "single configuration" 1 (List.length ids);
  check_int "two reconfigurations" 3 (List.hd ids);
  Array.iter
    (fun (st : State.t) ->
      if st.State.alive then begin
        check_bool "3 evicted" false (Config.is_member st.State.config 3);
        check_bool "5 evicted" false (Config.is_member st.State.config 5)
      end)
    c.Cluster.machines

(* Seed-sweep conservation fuzz: random victim, random kill time, always
   conserved. *)
let conservation_fuzz () =
  for seed = 1 to 5 do
    let c = mk_cluster ~machines:6 ~seed:(seed * 31) () in
    let r = Cluster.alloc_region_exn c in
    let n = 12 in
    let cells = alloc_cells c ~region:r.Wire.rid ~n ~init:100 in
    let rng = Rng.create (seed * 7) in
    let victim = 1 + Rng.int rng 5 in
    let kill_at = Time.ms (8 + Rng.int rng 30) in
    Engine.schedule c.Cluster.engine ~at:kill_at (fun () -> Cluster.kill c victim);
    bank_load c ~cells ~until:(Time.ms 60);
    Cluster.run_for c ~d:(Time.ms 100);
    let reader = surviving_machine c ~not_in:[ victim ] in
    check_int
      (Printf.sprintf "seed %d: conserved (victim %d at %a)" seed victim
         (fun () t -> Fmt.str "%a" Time.pp t)
         kill_at)
      (n * 100)
      (sum_cells c ~machine:reader cells)
  done

(* Deterministic replay: identical seeds produce identical histories. *)
let determinism () =
  let run seed =
    let c = mk_cluster ~machines:5 ~seed () in
    let r = Cluster.alloc_region_exn c in
    let cells = alloc_cells c ~region:r.Wire.rid ~n:8 ~init:50 in
    Engine.schedule c.Cluster.engine ~at:(Time.ms 20) (fun () -> Cluster.kill c 2);
    bank_load c ~cells ~until:(Time.ms 50);
    ( Cluster.total_committed c,
      Cluster.total_aborted c,
      Engine.events_processed c.Cluster.engine )
  in
  let a = run 1234 and b = run 1234 and c = run 4321 in
  check_bool "same seed, same history" true (a = b);
  check_bool "different seed, different history" true (a <> c)

let suites =
  [
    ( "protocol",
      [
        test "log space bounded" log_space_bounded;
        test "truncation tracking compact" truncation_tracking_compact;
        test "evicted machine harmless" evicted_machine_is_harmless;
        test "config convergence" config_convergence;
        test "conservation fuzz" conservation_fuzz;
        test "determinism" determinism;
      ] );
  ]
