open Farm_sim
open Farm_fault

(* Gray-failure schedules through the explorer: slow-but-alive NICs,
   asymmetric partitions, CPU throttling and lease flapping must never
   cost correctness — any generated schedule, healed and quiesced, passes
   strict serializability, value conservation and the state invariants,
   in both commit-protocol variants. The QCheck property draws arbitrary
   seeds; a failure shrinks to the one seed to replay with
   [farm_fuzz --gray --replay N]. Replay fidelity (byte-identical traces
   across process runs and --jobs counts) is covered per-seed here and
   cluster-wide by the CI sweep. *)

let test name fn = Alcotest.test_case name `Quick fn
let qtest = QCheck_alcotest.to_alcotest

let gray_opts protocol =
  {
    Explorer.default_opts with
    machines = 5;
    workers = 1;
    duration = Time.ms 30;
    gray = true;
    protocol;
  }

let gray_property protocol =
  let name =
    Fmt.str "gray schedules safe under %s"
      (match protocol with
      | Farm_core.Params.Validate_at_commit -> "validate-at-commit"
      | Farm_core.Params.Snapshot -> "snapshot")
  in
  QCheck.Test.make ~name ~count:12
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let o =
        Explorer.run_one ~opts:(gray_opts protocol) ~probe:Probes.gray seed
      in
      if not (Explorer.ok o) then
        QCheck.Test.fail_reportf "seed %d violated:@ %a" seed Explorer.pp_outcome o;
      true)

(* The gray generator's own contract: budget discipline (never more
   suspicion-capable victims than replication can absorb) and determinism. *)
let generator_deterministic () =
  for seed = 0 to 20 do
    let gen () =
      Schedule.generate_gray ~seed ~machines:6 ~duration:(Time.ms 40)
        ~lease:(Time.ms 5)
    in
    let a = gen () and b = gen () in
    Alcotest.(check string)
      (Printf.sprintf "seed %d stable" seed)
      (Fmt.str "%a" Schedule.pp a) (Fmt.str "%a" Schedule.pp b)
  done

let replay_fidelity protocol () =
  (* one gray schedule, replayed: traces and flight-recorder dumps must be
     byte-identical — run_one twice in-process, and through sweep at
     different domain counts (the merge must not reorder anything) *)
  let opts = { (gray_opts protocol) with perfetto = true } in
  let seed = 3 in
  let a = Explorer.run_one ~opts seed in
  let b = Explorer.run_one ~opts seed in
  Alcotest.(check (list string)) "trace identical" a.Explorer.trace b.Explorer.trace;
  Alcotest.(check (list string))
    "flight recorder identical" a.Explorer.recorder b.Explorer.recorder;
  Alcotest.(check (option string))
    "perfetto dump identical" a.Explorer.perfetto_json b.Explorer.perfetto_json;
  Alcotest.(check int) "committed identical" a.Explorer.committed b.Explorer.committed;
  let collect jobs =
    let acc = ref [] in
    let _ =
      Explorer.sweep ~opts
        ~on_outcome:(fun ~index o ->
          acc := (index, o.Explorer.seed, o.Explorer.trace, o.Explorer.recorder) :: !acc)
        ~jobs ~base_seed:17 ~schedules:6 ()
    in
    List.rev !acc
  in
  let s1 = collect 1 and s4 = collect 4 in
  Alcotest.(check bool) "sweep outcomes identical at --jobs 1 vs 4" true (s1 = s4)

let suites =
  [
    ( "grayfail",
      [
        qtest (gray_property Farm_core.Params.Validate_at_commit);
        qtest (gray_property Farm_core.Params.Snapshot);
        test "generator deterministic" generator_deterministic;
        test "replay fidelity across jobs"
          (replay_fidelity Farm_core.Params.Validate_at_commit);
      ] );
  ]
