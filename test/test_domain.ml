open Farm_sim
open Farm_fault

(* Domain-safety suite: the properties that make `farm_fuzz --jobs` sound.

   - {!Domain_pool} itself: in-order results, per-task exception capture,
     chunked claims, in-order [on_result] streaming.
   - Running the SAME seed concurrently in two domains yields byte-identical
     traces and flight-recorder dumps — the one test shape that exposes
     hidden cross-cluster globals (a shared sink, a toplevel rng, a lazy
     cache), which sequential runs can never catch.
   - [Explorer.sweep] renders a byte-identical report at jobs=1 and jobs=4,
     including the failing-outcome path: an injected invariant violation
     found by a worker domain surfaces with its trace and recorder dump
     intact, in the same position, with the same bytes. *)

let test name fn = Alcotest.test_case name `Quick fn

(* {1 Domain_pool} *)

(* uneven per-task work so completion order actually scrambles *)
let busy i =
  let n = 1_000 * (1 + (i * 31 mod 7)) in
  let acc = ref 0 in
  for k = 1 to n do
    acc := (!acc + k) land 0xFFFF
  done;
  !acc

let pool_results_in_order () =
  let tasks = Array.init 100 Fun.id in
  let f i = ignore (busy i); i * i in
  let seq = Domain_pool.map ~jobs:1 f tasks in
  let par = Domain_pool.map ~jobs:4 f tasks in
  Array.iteri
    (fun i r ->
      match (r, par.(i)) with
      | Ok a, Ok b ->
          Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) a;
          Alcotest.(check int) (Printf.sprintf "slot %d par" i) (i * i) b
      | _ -> Alcotest.failf "slot %d: unexpected Error" i)
    seq

let pool_captures_exceptions () =
  let tasks = Array.init 30 Fun.id in
  let f i = if i mod 7 = 0 then failwith (Printf.sprintf "task %d" i) else i in
  let results = Domain_pool.map ~jobs:4 f tasks in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v when i mod 7 <> 0 -> Alcotest.(check int) "value" i v
      | Error (Failure msg) when i mod 7 = 0 ->
          Alcotest.(check string) "message" (Printf.sprintf "task %d" i) msg
      | Ok _ -> Alcotest.failf "task %d: expected Error" i
      | Error e -> Alcotest.failf "task %d: unexpected %s" i (Printexc.to_string e))
    results

let pool_streams_in_order () =
  let tasks = Array.init 64 Fun.id in
  let seen = ref [] in
  ignore
    (Domain_pool.map ~jobs:4 ~chunk:3
       ~on_result:(fun i _ -> seen := i :: !seen)
       busy tasks);
  Alcotest.(check (list int)) "indices streamed 0..n-1" (List.init 64 Fun.id) (List.rev !seen)

let pool_chunked_covers_all () =
  let tasks = Array.init 41 Fun.id in
  List.iter
    (fun chunk ->
      let results = Domain_pool.map ~jobs:3 ~chunk (fun i -> i + 1) tasks in
      Array.iteri
        (fun i -> function
          | Ok v -> Alcotest.(check int) (Printf.sprintf "chunk %d slot %d" chunk i) (i + 1) v
          | Error _ -> Alcotest.fail "unexpected Error")
        results)
    [ 1; 8; 64 ]

(* {1 Cross-domain determinism} *)

let opts =
  { Explorer.default_opts with machines = 5; workers = 1; duration = Time.ms 20 }

(* The same seed, concurrently in two fresh domains, plus once sequentially:
   all three runs must agree byte-for-byte. Any cross-cluster shared mutable
   state — an obs sink, rng, or cache reachable from two clusters at once —
   shows up here as a trace or recorder diff. *)
let same_seed_two_domains () =
  let seed = 7 in
  let d1 = Domain.spawn (fun () -> Explorer.run_one ~opts seed) in
  let d2 = Domain.spawn (fun () -> Explorer.run_one ~opts seed) in
  let a = Domain.join d1 in
  let b = Domain.join d2 in
  let c = Explorer.run_one ~opts seed in
  Alcotest.(check (list string)) "traces agree across domains" a.Explorer.trace b.Explorer.trace;
  Alcotest.(check (list string)) "trace agrees with sequential" a.Explorer.trace c.Explorer.trace;
  Alcotest.(check (list string))
    "recorder dumps agree across domains" a.Explorer.recorder b.Explorer.recorder;
  Alcotest.(check (list string))
    "recorder agrees with sequential" a.Explorer.recorder c.Explorer.recorder;
  Alcotest.(check int) "committed agree" a.Explorer.committed b.Explorer.committed;
  Alcotest.(check (list string)) "violations agree" a.Explorer.violations b.Explorer.violations

(* Render a sweep exactly as farm_fuzz does — progress lines, failure dumps
   (trace + flight recorder), summary — so report comparison is bytewise. *)
let render_sweep ?probe ~jobs ~base_seed ~schedules () =
  let buf = Buffer.create 4096 in
  let report =
    Explorer.sweep ~opts ?probe
      ~on_outcome:(fun ~index o ->
        Buffer.add_string buf (Fmt.str "schedule %d: %a@." index Explorer.pp_outcome o))
      ~jobs ~base_seed ~schedules ()
  in
  Buffer.add_string buf
    (Fmt.str "%d schedules, %d committed, %d failures@." report.Explorer.schedules
       report.Explorer.total_committed
       (List.length report.Explorer.failures));
  (report, Buffer.contents buf)

let sweep_jobs_invariant () =
  let r1, out1 = render_sweep ~jobs:1 ~base_seed:3 ~schedules:8 () in
  let r4, out4 = render_sweep ~jobs:4 ~base_seed:3 ~schedules:8 () in
  Alcotest.(check string) "rendered report byte-identical" out1 out4;
  Alcotest.(check int) "totals agree" r1.Explorer.total_committed r4.Explorer.total_committed;
  Alcotest.(check int)
    "failure counts agree"
    (List.length r1.Explorer.failures)
    (List.length r4.Explorer.failures)

(* The seeds Explorer.sweep will derive from [base_seed], reproduced here so
   the test can target one of them for injection. *)
let derived_seeds ~base_seed n =
  let d = Rng.create base_seed in
  Array.init n (fun _ -> Rng.bits d)

let failing_outcome_from_worker_domain () =
  let base_seed = 11 and schedules = 6 in
  let target = (derived_seeds ~base_seed schedules).(2) in
  let probe ~seed _cluster = if seed = target then [ "injected: probe violation" ] else [] in
  let r4, out4 = render_sweep ~probe ~jobs:4 ~base_seed ~schedules () in
  (match r4.Explorer.failures with
  | [ o ] ->
      Alcotest.(check int) "failing seed is the injected one" target o.Explorer.seed;
      Alcotest.(check bool)
        "injected violation surfaced" true
        (List.mem "injected: probe violation" o.Explorer.violations);
      Alcotest.(check bool) "trace survived the domain hop" true (o.Explorer.trace <> []);
      Alcotest.(check bool) "recorder dump survived" true (o.Explorer.recorder <> [])
  | l -> Alcotest.failf "expected exactly one failure, got %d" (List.length l));
  (* and the parallel failure report matches the sequential one bytewise *)
  let _, out1 = render_sweep ~probe ~jobs:1 ~base_seed ~schedules () in
  Alcotest.(check string) "failure dump byte-identical across jobs" out1 out4

let suites =
  [
    ( "domain.pool",
      [
        test "results in task order" pool_results_in_order;
        test "exceptions captured per task" pool_captures_exceptions;
        test "on_result streams in order" pool_streams_in_order;
        test "chunked claims cover all tasks" pool_chunked_covers_all;
      ] );
    ( "domain.safety",
      [
        test "same seed in two domains is byte-identical" same_seed_two_domains;
        test "sweep report invariant under jobs" sweep_jobs_invariant;
        test "failure found on a worker domain intact" failing_outcome_from_worker_domain;
      ] );
  ]
