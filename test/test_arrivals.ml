open Farm_sim
open Farm_workloads

(* Statistical and structural checks on the open-loop arrival processes.
   All at fixed seeds — the generators are deterministic, so these are
   exact regression tests, not flaky statistical ones: the tolerances
   below only need to hold for the specific streams the seeds produce. *)

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)
let dur = Time.ms 500
let dur_s = Time.to_s_float dur

let gen ?(seed = 7) shape ~rate =
  Arrivals.generate shape ~rng:(Rng.create seed) ~rate ~duration:dur

(* {1 Poisson} *)

let poisson_count_and_gaps () =
  let rate = 20_000. in
  let a = gen Arrivals.Poisson ~rate in
  let n = Array.length a in
  let expect = rate *. dur_s in
  (* count within 5 sigma of rate * duration *)
  let sigma = sqrt expect in
  check_bool "count near rate*duration" true
    (abs_float (float_of_int n -. expect) < 5. *. sigma);
  (* inter-arrival gaps: mean ~ 1/rate, and exponential => sample std dev
     close to the mean (coefficient of variation ~ 1) *)
  let gaps =
    Array.init (n - 1) (fun i ->
        Time.to_s_float (Time.sub a.(i + 1) a.(i)))
  in
  let mean = Array.fold_left ( +. ) 0. gaps /. float_of_int (n - 1) in
  let var =
    Array.fold_left (fun acc g -> acc +. ((g -. mean) ** 2.)) 0. gaps
    /. float_of_int (n - 1)
  in
  let cv = sqrt var /. mean in
  check_bool "gap mean ~ 1/rate" true
    (abs_float (mean -. (1. /. rate)) < 0.1 /. rate);
  check_bool "gaps exponential (cv ~ 1)" true (cv > 0.9 && cv < 1.1)

let poisson_sorted_in_range () =
  let a = gen Arrivals.Poisson ~rate:5_000. in
  let ok = ref true in
  Array.iteri
    (fun i at ->
      if Time.( < ) at Time.zero || not (Time.( < ) at dur) then ok := false;
      if i > 0 && Time.( < ) at a.(i - 1) then ok := false)
    a;
  check_bool "sorted, within [0,duration)" true !ok

(* {1 Burstiness ordering} *)

let self_similar_burstier_than_poisson () =
  let rate = 20_000. in
  let bin = Time.ms 1 in
  let p = Arrivals.dispersion (gen Arrivals.Poisson ~rate) ~duration:dur ~bin in
  let s72 =
    Arrivals.dispersion
      (gen (Arrivals.Self_similar { b = 0.72 }) ~rate)
      ~duration:dur ~bin
  in
  let s85 =
    Arrivals.dispersion
      (gen (Arrivals.Self_similar { b = 0.85 }) ~rate)
      ~duration:dur ~bin
  in
  (* Poisson is ~1 by definition; the b-model grows with b *)
  check_bool "poisson dispersion ~ 1" true (p > 0.5 && p < 2.);
  check_bool "b=0.72 burstier than poisson" true (s72 > 2. *. p);
  check_bool "b=0.85 burstier than b=0.72" true (s85 > s72)

(* {1 Shape checkpoints} *)

(* arrivals in [lo, hi) as a fraction of the window *)
let count_in a ~lo ~hi =
  Array.fold_left
    (fun acc at ->
      let s = Time.to_s_float at /. dur_s in
      if s >= lo && s < hi then acc + 1 else acc)
    0 a

let diurnal_peak_over_trough () =
  let a = gen (Arrivals.Diurnal { trough = 0.2 }) ~rate:20_000. in
  (* rate(t) = base * (1 + a sin(2 pi t / dur)), a = 0.8: peak at t/dur =
     0.25, trough at 0.75 *)
  let peak = count_in a ~lo:0.15 ~hi:0.35 in
  let trough = count_in a ~lo:0.65 ~hi:0.85 in
  check_bool "peak quarter >> trough quarter" true
    (float_of_int peak > 3. *. float_of_int trough);
  check_bool "trough still nonzero" true (trough > 0)

let flash_crowd_spike () =
  let a =
    gen (Arrivals.Flash { at = 0.5; magnitude = 6.; width = 0.2 }) ~rate:10_000.
  in
  (* spike is a triangle centred at 0.5 with half-width 0.1 *)
  let inside = count_in a ~lo:0.45 ~hi:0.55 in
  let before = count_in a ~lo:0.10 ~hi:0.20 in
  check_bool "flash window much denser than baseline" true
    (float_of_int inside > 2.5 *. float_of_int before);
  (* away from the spike the process is plain Poisson at base rate *)
  let after = count_in a ~lo:0.80 ~hi:0.90 in
  let expect = 10_000. *. dur_s *. 0.1 in
  check_bool "baseline unchanged off-spike" true
    (abs_float (float_of_int after -. expect) < 5. *. sqrt expect);
  check_bool "baseline unchanged pre-spike" true
    (abs_float (float_of_int before -. expect) < 5. *. sqrt expect)

(* {1 Determinism} *)

let equal_seeds_byte_identical () =
  List.iter
    (fun shape ->
      let a = gen ~seed:11 shape ~rate:15_000. in
      let b = gen ~seed:11 shape ~rate:15_000. in
      let c = gen ~seed:12 shape ~rate:15_000. in
      check_bool
        (Fmt.str "%a: equal seeds equal streams" Arrivals.pp_shape shape)
        true (a = b);
      check_bool
        (Fmt.str "%a: different seeds differ" Arrivals.pp_shape shape)
        true (a <> c))
    [
      Arrivals.Poisson;
      Arrivals.Self_similar { b = 0.72 };
      Arrivals.Diurnal { trough = 0.3 };
      Arrivals.Flash { at = 0.4; magnitude = 4.; width = 0.25 };
    ]

let invalid_params_rejected () =
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "rate 0 rejected" true
    (rejects (fun () -> gen Arrivals.Poisson ~rate:0.));
  check_bool "b out of range rejected" true
    (rejects (fun () -> gen (Arrivals.Self_similar { b = 0.2 }) ~rate:1_000.));
  check_bool "trough > 1 rejected" true
    (rejects (fun () -> gen (Arrivals.Diurnal { trough = 1.5 }) ~rate:1_000.));
  check_bool "magnitude < 1 rejected" true
    (rejects (fun () ->
         gen (Arrivals.Flash { at = 0.5; magnitude = 0.5; width = 0.1 }) ~rate:1_000.))

let suites =
  [
    ( "arrivals",
      [
        test "poisson count and exponential gaps" poisson_count_and_gaps;
        test "poisson sorted within window" poisson_sorted_in_range;
        test "self-similar burstier than poisson" self_similar_burstier_than_poisson;
        test "diurnal peak over trough" diurnal_peak_over_trough;
        test "flash crowd spike" flash_crowd_spike;
        test "equal seeds byte-identical" equal_seeds_byte_identical;
        test "invalid parameters rejected" invalid_params_rejected;
      ] );
  ]
