open Farm_sim
open Farm_core
open Farm_workloads
open Test_util

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)

(* Run random register transactions (reads + read-modify-writes) from every
   machine, recording each committed transaction's version footprint, and
   check the history with the precedence-graph serializability checker. *)
let random_history ?(machines = 6) ?(seed = 77) ?(cells = 16) ?(duration = Time.ms 40)
    ?kill () =
  let c = mk_cluster ~machines ~seed () in
  let r = Cluster.alloc_region_exn c in
  let addrs = alloc_cells c ~region:r.Wire.rid ~n:cells ~init:0 in
  let hist = History.create () in
  let stop = ref false in
  Array.iter
    (fun (st : State.t) ->
      let skip = match kill with Some v -> st.State.id = v | None -> false in
      if not skip then
        for _w = 0 to 2 do
          Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
              let rng = Rng.split st.State.rng in
              while not !stop do
                let a = Rng.int rng cells and b = Rng.int rng cells in
                let ro = Rng.int rng 100 < 30 in
                (* build the transaction by hand so its footprint is
                   available for recording after commit *)
                let tx = Txn.begin_tx st ~thread:0 in
                (match
                   (try
                      let va = read_int tx addrs.(a) in
                      let vb = read_int tx addrs.(b) in
                      if not ro then begin
                        write_int tx addrs.(a) (va + 1);
                        if a <> b then write_int tx addrs.(b) (vb + va)
                      end;
                      Commit.commit tx
                    with Txn.Abort reason ->
                      tx.Txn.finished <- true;
                      Txn.return_allocations tx;
                      Error reason)
                 with
                | Ok () -> ignore (History.record hist tx)
                | Error _ -> ());
                Proc.sleep (Time.us (50 + Rng.int rng 200))
              done)
        done)
    c.Cluster.machines;
  (match kill with
  | Some victim ->
      Engine.schedule c.Cluster.engine
        ~at:(Time.add (Cluster.now c) (Time.ms 10))
        (fun () -> Cluster.kill c victim)
  | None -> ());
  Cluster.run_for c ~d:duration;
  stop := true;
  Cluster.run_for c ~d:(Time.ms 100);
  hist

let serializable_normal () =
  let hist = random_history () in
  check_bool "recorded a meaningful history" true (History.size hist > 300);
  match History.check hist with
  | History.Serializable -> ()
  | v -> Alcotest.failf "history not serializable: %a" History.pp_verdict v

let serializable_across_failure () =
  (* kill the region's primary mid-history: recovery must not create
     duplicate versions or precedence cycles *)
  List.iter
    (fun seed ->
      let hist = random_history ~seed ~kill:1 ~duration:(Time.ms 60) () in
      check_bool "history nonempty" true (History.size hist > 100);
      match History.check hist with
      | History.Serializable -> ()
      | v ->
          Alcotest.failf "seed %d: history not serializable after failure: %a" seed
            History.pp_verdict v)
    [ 5; 23; 91 ]

(* The checker itself must reject bad histories (built by hand with
   [History.add] — each footprint entry is [(object, version observed)]; a
   write installs [observed + 1]). *)
let checker_detects_lost_update () =
  let hist = History.create () in
  let a = Addr.make ~region:1 ~offset:0 in
  (* two transactions both read version 3 and both "commit" version 4 *)
  ignore (History.add hist ~reads:[ (a, 3) ] ~writes:[ (a, 3) ]);
  ignore (History.add hist ~reads:[ (a, 3) ] ~writes:[ (a, 3) ]);
  (match History.check hist with
  | History.Duplicate_write _ -> ()
  | v -> Alcotest.failf "lost update not detected: %a" History.pp_verdict v)

let checker_detects_write_skew () =
  let hist = History.create () in
  let a = Addr.make ~region:1 ~offset:0 and b = Addr.make ~region:1 ~offset:64 in
  (* T0 reads a@0 and writes b@0->1; T1 reads b@0 and writes a@0->1:
     each must precede the other — a classic write-skew cycle *)
  ignore (History.add hist ~reads:[ (a, 0) ] ~writes:[ (b, 0) ]);
  ignore (History.add hist ~reads:[ (b, 0) ] ~writes:[ (a, 0) ]);
  (match History.check hist with
  | History.Cycle _ -> ()
  | v -> Alcotest.failf "cycle not detected: %a" History.pp_verdict v)

let checker_detects_duplicate_install () =
  let hist = History.create () in
  let a = Addr.make ~region:2 ~offset:128 in
  (* a serial prefix, then a double install of version 2 with no read
     overlap (e.g. a replica applying a recovered commit twice) *)
  ignore (History.add hist ~reads:[] ~writes:[ (a, 0) ]);
  ignore (History.add hist ~reads:[] ~writes:[ (a, 1) ]);
  ignore (History.add hist ~reads:[] ~writes:[ (a, 1) ]);
  (match History.check hist with
  | History.Duplicate_write (addr, 2) when Addr.equal addr a -> ()
  | v -> Alcotest.failf "duplicate install not detected: %a" History.pp_verdict v)

let checker_accepts_handmade_serial () =
  let hist = History.create () in
  let a = Addr.make ~region:1 ~offset:0 and b = Addr.make ~region:1 ~offset:64 in
  (* a read-modify-write chain interleaved across two objects *)
  ignore (History.add hist ~reads:[ (a, 0) ] ~writes:[ (a, 0) ]);
  ignore (History.add hist ~reads:[ (a, 1); (b, 0) ] ~writes:[ (b, 0) ]);
  ignore (History.add hist ~reads:[ (a, 1); (b, 1) ] ~writes:[ (a, 1); (b, 1) ]);
  match History.check hist with
  | History.Serializable -> ()
  | v -> Alcotest.failf "valid history rejected: %a" History.pp_verdict v

let checker_accepts_serial () =
  let hist = random_history ~machines:3 ~duration:(Time.ms 10) () in
  check_bool "sanity" true (History.check hist = History.Serializable)

let suites =
  [
    ( "serializability",
      [
        test "checker detects lost update" checker_detects_lost_update;
        test "checker detects write-skew cycle" checker_detects_write_skew;
        test "checker detects duplicate version install" checker_detects_duplicate_install;
        test "checker accepts hand-made serial history" checker_accepts_handmade_serial;
        test "checker accepts real histories" checker_accepts_serial;
        test "random history serializable" serializable_normal;
        test "serializable across failures (3 seeds)" serializable_across_failure;
      ] );
  ]
