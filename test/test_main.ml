let () =
  Alcotest.run "farm"
    (Test_sim.suites @ Test_net.suites @ Test_substrates.suites @ Test_core_units.suites @ Test_wirecodec.suites @ Test_txn.suites @ Test_recovery.suites @ Test_lease.suites @ Test_kv.suites @ Test_kv_model.suites @ Test_workloads.suites @ Test_protocol.suites @ Test_kv_extra.suites @ Test_commit_edge.suites @ Test_serializability.suites @ Test_powerfail.suites @ Test_endtoend.suites @ Test_hierarchy.suites @ Test_fuzz.suites @ Test_opacity.suites @ Test_batching.suites @ Test_obs.suites @ Test_alloc.suites @ Test_domain.suites)
