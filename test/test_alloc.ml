open Farm_sim
open Farm_core
open Test_util

let test name fn = Alcotest.test_case name `Quick fn

(* Allocation-discipline tests (DESIGN.md, "Allocation discipline").

   The commit hot path runs on pooled per-worker arenas: flat int-keyed
   vectors reset (not reallocated) between transactions, preallocated
   wire-record batches, and explicit int comparators.  Two contracts are
   enforced here:

   - the end-to-end commit path stays within a fixed per-transaction
     host-heap budget, measured byte-exactly over a GC-quiet window
     ({!Farm_obs.Allocmeter});
   - pooling is invisible: with [Params.arena_reuse] off every commit
     gets a virgin arena, and a seeded workload — including a primary
     kill and the recovery that follows — must produce byte-identical
     traces, flight-recorder dumps and commit counts either way.  Any
     state leaking between transactions through a recycled arena shows
     up as a diff. *)

(* {1 Per-commit allocation budget}

   The pre-refactor commit pipeline allocated 36 679 B per transaction on
   this workload (fresh hashtables, cons-lists, polymorphic sorts, and a
   GC-placement artifact the quiet-window methodology removes); the arena
   path measures 3 983 B.  The budget asserts the required >= 5x
   reduction (7 335 B) with headroom below it. *)
let budget_bytes_per_tx = 5_000.

(* The snapshot protocol pays for fresh timestamped COMMIT-BACKUP items
   and the version-chain archive on top of the baseline hot path; chain
   nodes are pooled, so the steady-state overhead is the per-commit wire
   items plus the commit-wait scheduling. *)
let snapshot_budget_bytes_per_tx = 7_000.

let commit_budget_mode ~params ~budget () =
  Farm_obs.Allocmeter.with_quiet_heap @@ fun () ->
  let c = Cluster.create ~params ~machines:3 () in
  let r1 = Cluster.alloc_region_exn c in
  let r2 = Cluster.alloc_region_exn c in
  let a, b =
    Cluster.run_on c ~machine:0 (fun st ->
        match
          Api.run st ~thread:0 (fun tx ->
              let a = Txn.alloc tx ~size:16 ~region:r1.Wire.rid () in
              let b = Txn.alloc tx ~size:16 ~region:r2.Wire.rid () in
              (a, b))
        with
        | Ok v -> v
        | Error e -> Alcotest.failf "setup tx failed: %a" Txn.pp_abort e)
  in
  let payload = Bytes.make 16 'x' in
  let batch st n =
    for _ = 1 to n do
      match
        Api.run st ~thread:0 (fun tx ->
            ignore (Txn.read tx a ~len:16);
            Txn.write tx a payload;
            Txn.write tx b payload)
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "micro tx failed: %a" Txn.pp_abort e
    done
  in
  let n = 512 in
  let rec attempt tries =
    let per_tx =
      Cluster.run_on c ~machine:0 (fun st ->
          batch st 32;
          let (), bytes, clean =
            Farm_obs.Allocmeter.measure (fun () -> batch st n)
          in
          if clean then Some (bytes /. float_of_int n) else None)
    in
    match per_tx with
    | Some v -> v
    | None when tries > 0 -> attempt (tries - 1)
    | None -> Alcotest.fail "no GC-quiet measurement window"
  in
  let per_tx = attempt 3 in
  if per_tx > budget then
    Alcotest.failf "commit allocates %.0f B/tx, budget %.0f B/tx" per_tx budget

let commit_budget () =
  commit_budget_mode ~params:Params.default ~budget:budget_bytes_per_tx ()

let commit_budget_snapshot () =
  commit_budget_mode
    ~params:{ Params.default with Params.protocol = Params.Snapshot }
    ~budget:snapshot_budget_bytes_per_tx ()

(* {1 Arena reuse is invisible}

   Same seed, same workload, arenas pooled vs virgin: traces and
   flight-recorder dumps must be byte-identical.  The workload crosses a
   primary kill so the comparison also covers the recovery paths that
   re-read retained log records. *)

let run_workload ~arena_reuse =
  let params = { quick_params with Params.arena_reuse } in
  let c = mk_cluster ~params ~machines:6 ~seed:23 () in
  Cluster.set_tracing c true;
  Cluster.set_recording c true;
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:4 ~init:0 in
  let stop = ref false in
  let writers =
    List.filter (fun m -> m <> r.Wire.primary) [ 0; 1; 2; 3; 4; 5 ]
  in
  List.iteri
    (fun i m ->
      let st = Cluster.machine c m in
      Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
          let k = ref i in
          while not !stop do
            (match
               Api.run_retry ~attempts:4 st ~thread:0 (fun tx ->
                   let cell = cells.(!k mod Array.length cells) in
                   let v = read_int tx cell in
                   write_int tx cell (v + 1))
             with
            | Ok () -> k := !k + 1
            | Error _ -> ());
            Proc.sleep (Time.us 200)
          done))
    writers;
  Cluster.run_for c ~d:(Time.ms 10);
  Cluster.kill c r.Wire.primary;
  Cluster.run_for c ~d:(Time.ms 120);
  stop := true;
  Cluster.run_for c ~d:(Time.ms 2);
  let trace = Cluster.trace_dump c in
  let flight = Cluster.flight_dump c in
  (trace, flight, Cluster.total_committed c, Cluster.total_aborted c)

let arena_reuse_invisible () =
  let trace_on, flight_on, committed_on, aborted_on =
    run_workload ~arena_reuse:true
  in
  let trace_off, flight_off, committed_off, aborted_off =
    run_workload ~arena_reuse:false
  in
  Alcotest.(check int) "committed equal" committed_off committed_on;
  Alcotest.(check int) "aborted equal" aborted_off aborted_on;
  Alcotest.(check (list string)) "flight dumps identical" flight_off flight_on;
  Alcotest.(check bool) "traces byte-identical" true
    (String.equal trace_off trace_on)

let suites =
  [
    ( "alloc",
      [
        test "commit path stays within its allocation budget" commit_budget;
        test "snapshot-mode commit path stays within its budget" commit_budget_snapshot;
        test "arena reuse produces byte-identical runs" arena_reuse_invisible;
      ] );
  ]
