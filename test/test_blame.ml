open Farm_sim
open Farm_core
open Farm_obs
open Farm_fault

(* The latency-attribution layer (DESIGN.md §9): exact per-span blame
   partitions, the aggregate blame/phase reconciliation, critical-path
   reconstruction against a hand-checked two-machine run, heat-decay
   arithmetic, heat ranking under skew, and determinism-inertness of the
   whole thing. *)

let test name fn = Alcotest.test_case name `Quick fn
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let count_sub s sub =
  let n = String.length s and m = String.length sub in
  let c = ref 0 in
  for i = 0 to n - m do
    if String.sub s i m = sub then incr c
  done;
  !c

(* {1 Per-span exactness}

   With blame armed, every committed span's category claims sum to its
   end-to-end latency to the nanosecond — the invariant is per
   transaction, not just in aggregate. *)
let per_span_blame_exact () =
  let c = Cluster.create ~seed:7 ~machines:3 () in
  Cluster.set_blame c true;
  let r = Cluster.alloc_region_exn c in
  let coord = (r.Wire.primary + 1) mod 3 in
  let spans = ref [] in
  Cluster.run_on c ~machine:coord (fun st ->
      Obs.set_span_hook st.State.obs
        (Some (fun ~committed span -> if committed then spans := span :: !spans));
      for i = 1 to 5 do
        match
          Api.run_retry st ~thread:0 (fun tx ->
              let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
              Txn.write tx a (Bytes.make 8 (Char.chr (64 + i))))
        with
        | Ok () -> ()
        | Error e -> Alcotest.failf "tx %d: %a" i Txn.pp_abort e
      done;
      Obs.set_span_hook st.State.obs None);
  check_bool "captured spans" true (List.length !spans >= 5);
  List.iter
    (fun span ->
      let blame = Obs.Span.blame span in
      let total = Obs.Span.total_ns span in
      check_bool "span nonzero" true (total > 0);
      check_bool "blame nonempty" true (blame <> []);
      check_int "blame categories sum to the span total, to the ns" total
        (List.fold_left (fun acc (_, ns) -> acc + ns) 0 blame))
    !spans

(* {1 Aggregate reconciliation and the arming window}

   Transactions committed before arming must not skew the comparison:
   arming resets the exact accumulators, so afterwards the cluster-wide
   non-admission blame total equals the cluster-wide phase total. *)
let aggregate_reconciliation () =
  let c = Cluster.create ~seed:11 ~machines:3 () in
  let r = Cluster.alloc_region_exn c in
  let write_txs n =
    Cluster.run_on c ~machine:1 (fun st ->
        for i = 1 to n do
          match
            Api.run_retry st ~thread:0 (fun tx ->
                let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
                Txn.write tx a (Bytes.make 8 (Char.chr (64 + i))))
          with
          | Ok () -> ()
          | Error e -> Alcotest.failf "tx: %a" Txn.pp_abort e
        done)
  in
  (* phase ns recorded with blame off — the "bulk load" *)
  write_txs 4;
  check_bool "phases recorded before arming" true
    (List.fold_left (fun acc (_, v) -> acc + v) 0 (Cluster.phase_totals c) > 0);
  Cluster.set_blame c true;
  check_int "arming resets the reconciliation window" 0
    (List.fold_left (fun acc (_, v) -> acc + v) 0 (Cluster.phase_totals c));
  write_txs 6;
  let blame_sum =
    List.fold_left
      (fun acc (name, v) -> if name = "admission" then acc else acc + v)
      0 (Cluster.blame_totals c)
  in
  let phase_sum = List.fold_left (fun acc (_, v) -> acc + v) 0 (Cluster.phase_totals c) in
  check_bool "window saw transactions" true (phase_sum > 0);
  check_int "blame total == phase total, to the ns" phase_sum blame_sum

(* {1 Critical path, hand-checked}

   Two machines, one committed cross-machine transaction in the armed
   window — so the slowest exemplar IS that transaction and everything
   about its path can be checked against independently captured truth:
   span hook total, blame partition, time-ordered hops, a critical
   coordinator-spine slice, and a critical remote log-process hop on the
   other machine. *)
let critpath_hand_computed () =
  (* replication 2 so two machines can host a region: primary + 1 backup *)
  let params = { Params.default with Params.replication = 2 } in
  let c = Cluster.create ~seed:21 ~params ~machines:2 () in
  let r = Cluster.alloc_region_exn c in
  let coord = (r.Wire.primary + 1) mod 2 in
  Cluster.set_blame c true;
  Cluster.set_tracing c true;
  let captured = ref None in
  Cluster.run_on c ~machine:coord (fun st ->
      Obs.set_span_hook st.State.obs
        (Some (fun ~committed span -> if committed then captured := Some span));
      (match
         Api.run_retry st ~thread:0 (fun tx ->
             let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
             Txn.write tx a (Bytes.make 8 'p'))
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "tx: %a" Txn.pp_abort e);
      Obs.set_span_hook st.State.obs None);
  let span = match !captured with Some s -> s | None -> Alcotest.fail "no span" in
  let tracers =
    Array.to_list
      (Array.map (fun (st : State.t) -> Obs.tracer st.State.obs) c.Cluster.machines)
  in
  let exemplars =
    Array.fold_left
      (fun acc (st : State.t) -> acc @ Obs.exemplars st.State.obs)
      [] c.Cluster.machines
  in
  check_bool "the committed tx became an exemplar" true (exemplars <> []);
  match Critpath.paths ~tracers ~exemplars ~k:1 with
  | [] -> Alcotest.fail "no critical path"
  | _ :: _ :: _ -> Alcotest.fail "k=1 must yield one path"
  | [ p ] ->
      check_int "path total is the span total" (Obs.Span.total_ns span) p.Critpath.p_total;
      check_int "path blame partitions the total exactly" p.Critpath.p_total
        (List.fold_left (fun acc (_, ns) -> acc + ns) 0 p.Critpath.p_blame);
      check_int "coordinator machine" coord p.Critpath.p_txm;
      check_bool "path has hops" true (p.Critpath.p_hops <> []);
      let sorted = ref true and last = ref min_int in
      List.iter
        (fun (h : Critpath.hop) ->
          if h.Critpath.h_ts < !last then sorted := false;
          last := h.Critpath.h_ts)
        p.Critpath.p_hops;
      check_bool "hops are time-ordered" true !sorted;
      check_bool "a critical execute slice sits on the coordinator" true
        (List.exists
           (fun (h : Critpath.hop) ->
             h.Critpath.h_crit
             && h.Critpath.h_machine = coord
             && contains h.Critpath.h_name "execute")
           p.Critpath.p_hops);
      check_bool "a critical remote log-process hop sits on the primary" true
        (List.exists
           (fun (h : Critpath.hop) ->
             h.Critpath.h_crit
             && h.Critpath.h_machine = r.Wire.primary
             && contains h.Critpath.h_name "log-process")
           p.Critpath.p_hops);
      (* rendering and export marking agree with the reconstruction *)
      let rendered = Fmt.str "%a" Critpath.pp_path p in
      check_bool "rendering names the tx" true
        (contains rendered (Fmt.str "m%d.t%d" p.Critpath.p_txm p.Critpath.p_txt));
      let crit_hops =
        List.length (List.filter (fun (h : Critpath.hop) -> h.Critpath.h_crit) p.Critpath.p_hops)
      in
      let marked = Cluster.trace_dump_critical c ~k:1 in
      check_int "export marks exactly the critical hops" crit_hops
        (count_sub marked "\"crit\":1");
      check_int "unmarked export carries no crit field" 0
        (count_sub (Cluster.trace_dump c) "\"crit\":1")

(* {1 Heat decay arithmetic}

   Pure integer halving: [v lsr (elapsed / half_life)], timestamps
   advanced by whole half-lives only. *)
let heat_decay_math () =
  let h = Heat.create ~half_life_ns:1_000 () in
  for _ = 1 to 8 do
    Heat.access h ~now:0 ~region:7
  done;
  Heat.conflict h ~now:0 ~region:7;
  (match Heat.report h ~now:0 with
  | [ s ] ->
      check_int "fresh access count" 8 s.Heat.hs_access;
      check_int "fresh conflict count" 1 s.Heat.hs_conflict;
      check_int "score weighs conflicts 4x" 12 s.Heat.hs_score
  | l -> Alcotest.failf "expected one region, got %d" (List.length l));
  (match Heat.report h ~now:2_500 with
  | [ s ] ->
      check_int "two half-lives: 8 lsr 2" 2 s.Heat.hs_access;
      check_int "conflict decayed to zero" 0 s.Heat.hs_conflict;
      check_int "decayed score" 2 s.Heat.hs_score
  | l -> Alcotest.failf "expected one region, got %d" (List.length l));
  check_bool "fully decayed regions drop out" true (Heat.report h ~now:100_000 = [])

(* Lazy decay leaves no residue: probing at intermediate instants must not
   change what a later report sees. *)
let heat_probe_frequency_independent () =
  let quiet = Heat.create ~half_life_ns:1_000 () in
  let probed = Heat.create ~half_life_ns:1_000 () in
  let feed h =
    for _ = 1 to 100 do
      Heat.access h ~now:0 ~region:3
    done;
    Heat.conflict h ~now:250 ~region:3;
    Heat.conflict h ~now:4_100 ~region:3
  in
  feed quiet;
  feed probed;
  (* probe the second copy at awkward (non-multiple) instants *)
  List.iter (fun t -> ignore (Heat.report probed ~now:t)) [ 300; 1_100; 2_700; 4_150 ];
  let final h = Heat.report h ~now:6_500 in
  Alcotest.(check bool)
    "probe frequency does not change the decayed values" true
    (final quiet = final probed)

(* {1 Heat ranking under skew}

   Two regions, 10:1 access skew plus all the conflicts on the hot one:
   the cluster heat report must rank the hot region first. *)
let heat_ranks_hot_region () =
  let c = Cluster.create ~seed:13 ~machines:3 () in
  let hot = Cluster.alloc_region_exn c in
  let cold = Cluster.alloc_region_exn c in
  let hammer region n =
    Cluster.run_on c ~machine:1 (fun st ->
        for i = 1 to n do
          match
            Api.run_retry st ~thread:0 (fun tx ->
                let a = Txn.alloc tx ~size:8 ~region () in
                Txn.write tx a (Bytes.make 8 (Char.chr (64 + (i mod 26)))))
          with
          | Ok () -> ()
          | Error e -> Alcotest.failf "tx: %a" Txn.pp_abort e
        done)
  in
  hammer hot.Wire.rid 30;
  hammer cold.Wire.rid 3;
  match Cluster.heat_report c with
  | [] -> Alcotest.fail "empty heat report"
  | top :: rest ->
      check_int "hot region ranked first" hot.Wire.rid top.Cluster.h_region;
      check_bool "cold region reported too" true
        (List.exists (fun (h : Cluster.heat) -> h.Cluster.h_region = cold.Wire.rid) rest);
      check_bool "strictly hotter" true
        (match
           List.find_opt
             (fun (h : Cluster.heat) -> h.Cluster.h_region = cold.Wire.rid)
             rest
         with
        | Some ch -> top.Cluster.h_score > ch.Cluster.h_score
        | None -> false)

(* {1 Determinism-inertness}

   Blame rides the explorer's [record] switch: on vs off, the simulated
   history is identical; on vs on, the blame report itself is identical. *)
let blame_is_inert_and_deterministic () =
  let opts m =
    { Explorer.default_opts with machines = 5; workers = 1; duration = Time.ms 30; record = m }
  in
  let seed = 3 in
  let off = Explorer.run_one ~opts:(opts false) seed in
  let on = Explorer.run_one ~opts:(opts true) seed in
  let on2 = Explorer.run_one ~opts:(opts true) seed in
  Alcotest.(check (list string))
    "histories identical with blame on/off" off.Explorer.trace on.Explorer.trace;
  check_int "committed identical" off.Explorer.committed on.Explorer.committed;
  check_bool "blame off reports nothing" true (off.Explorer.blame = []);
  check_bool "blame on reports categories" true (on.Explorer.blame <> []);
  Alcotest.(check (list (pair string int)))
    "blame report is deterministic under seed replay" on.Explorer.blame on2.Explorer.blame

(* ...and a failing outcome surfaces the blame split next to the flight
   recorder. *)
let failure_prints_blame () =
  let opts = { Explorer.default_opts with machines = 5; workers = 1; duration = Time.ms 30 } in
  let o = Explorer.run_one ~opts 3 in
  let forced = { o with Explorer.violations = [ "forced: injected for the test" ] } in
  let rendered = Fmt.str "%a" Explorer.pp_outcome forced in
  check_bool "dump carries the latency-blame section" true
    (contains rendered "latency blame")

let suites =
  [
    ( "blame",
      [
        test "every committed span's blame sums to its total" per_span_blame_exact;
        test "cluster blame reconciles with phases, arming resets" aggregate_reconciliation;
        test "critical path on a hand-checked 2-machine run" critpath_hand_computed;
        test "heat decay arithmetic" heat_decay_math;
        test "heat decay is probe-frequency independent" heat_probe_frequency_independent;
        test "heat ranks the hot region first" heat_ranks_hot_region;
        test "blame on/off is inert; reports deterministic" blame_is_inert_and_deterministic;
        test "failing outcome prints the blame split" failure_prints_blame;
      ] );
  ]
