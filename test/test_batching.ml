open Farm_sim
open Farm_net
open Farm_fault

(* Doorbell-batched one-sided verbs: CPU-cost accounting of the batch
   verbs, per-op independence of faults and failures within a batch, and
   end-to-end equivalence of the batched and unbatched commit pipelines
   under the fault-schedule fuzzer. *)

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type msg = Nothing

let mk_fabric ?(machines = 3) ?(params = Params.default) () =
  let e = Engine.create () in
  let rng = Rng.create 11 in
  let fab = Fabric.create e ~params ~rng in
  let cpus =
    Array.init machines (fun id ->
        let cpu = Cpu.create e ~threads:4 in
        Fabric.add_machine fab ~id ~cpu;
        cpu)
  in
  (e, fab, cpus)

(* A batch of k writes costs issue + (k-1) doorbells + one poll; the same
   writes issued singly cost k * (issue + poll). *)
let batch_cpu_cost () =
  let p = Params.default in
  let e, (fab : msg Fabric.t), cpus = mk_fabric () in
  let descs = List.map (fun dst -> (dst, 64, fun () -> ())) [ 1; 2; 1; 2 ] in
  Proc.spawn e (fun () ->
      let results = Fabric.one_sided_write_batch fab ~src:0 descs in
      Array.iter
        (function Ok () -> () | Error _ -> Alcotest.fail "batch op failed")
        results);
  Engine.run e;
  let expect =
    Time.add
      (Time.add p.Params.cpu_rdma_issue (Time.mul_int p.Params.cpu_rdma_doorbell 3))
      p.Params.cpu_rdma_poll
  in
  check_int "batch of 4: issue + 3 doorbells + 1 poll" (Time.to_ns expect)
    (Time.to_ns (Cpu.busy_total cpus.(0)));
  (* the same four writes as singles *)
  let e2, (fab2 : msg Fabric.t), cpus2 = mk_fabric () in
  Proc.spawn e2 (fun () ->
      List.iter
        (fun (dst, bytes, apply) ->
          match Fabric.one_sided_write fab2 ~src:0 ~dst ~bytes apply with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "single op failed")
        descs);
  Engine.run e2;
  let expect_singles =
    Time.mul_int (Time.add p.Params.cpu_rdma_issue p.Params.cpu_rdma_poll) 4
  in
  check_int "4 singles: 4 x (issue + poll)" (Time.to_ns expect_singles)
    (Time.to_ns (Cpu.busy_total cpus2.(0)))

let empty_batch_is_free () =
  let e, (fab : msg Fabric.t), cpus = mk_fabric () in
  let len = ref (-1) in
  Proc.spawn e (fun () -> len := Array.length (Fabric.one_sided_read_batch fab ~src:0 []));
  Engine.run e;
  check_int "no results" 0 !len;
  check_int "no CPU charged" 0 (Time.to_ns (Cpu.busy_total cpus.(0)))

(* Batched reads return results in descriptor order and linearize at the
   target, exactly like the single verb. *)
let batch_read_order () =
  let e, (fab : msg Fabric.t), _ = mk_fabric () in
  let a = ref 10 and b = ref 20 in
  let got = ref [||] in
  Proc.spawn e (fun () ->
      got :=
        Fabric.one_sided_read_batch fab ~src:0
          [ (1, 8, fun () -> !a); (2, 8, fun () -> !b); (1, 8, fun () -> !a + 1) ]);
  Engine.run e;
  let v i = match !got.(i) with Ok v -> v | Error _ -> Alcotest.fail "read failed" in
  check_int "desc 0" 10 (v 0);
  check_int "desc 1" 20 (v 1);
  check_int "desc 2" 11 (v 2)

(* A link fault on one destination delays only that op's completion; the
   other ops in the batch complete at their usual instant. *)
let per_op_fault_independence () =
  let delay = Time.us 50 in
  let e, (fab : msg Fabric.t), _ = mk_fabric () in
  Fabric.set_link_fault ~delay fab ~src:0 ~dst:2;
  let done_at = Array.make 3 Time.zero in
  let returned_at = ref Time.zero in
  Proc.spawn e (fun () ->
      let results =
        Fabric.one_sided_write_batch
          ~on_complete:(fun i _ -> done_at.(i) <- Engine.now e)
          fab ~src:0
          [ (1, 64, fun () -> ()); (2, 64, fun () -> ()); (1, 64, fun () -> ()) ]
      in
      returned_at := Proc.now ();
      Array.iter
        (function Ok () -> () | Error _ -> Alcotest.fail "batch op failed")
        results);
  Engine.run e;
  check_bool "delayed op completes at least [delay] after the first op" true
    Time.(done_at.(1) >= Time.add done_at.(0) delay);
  check_bool "ops on healthy links are unaffected by the fault" true
    Time.(Time.max done_at.(0) done_at.(2) < Time.add done_at.(0) (Time.us 10));
  check_bool "batch returns only after the slowest op" true
    Time.(returned_at.contents >= done_at.(1))

(* A dead machine in the batch fails only its own op: the others apply and
   ack normally. *)
let per_op_failure_independence () =
  let e, (fab : msg Fabric.t), _ = mk_fabric () in
  Fabric.set_alive fab 2 false;
  let cell = ref 0 in
  let got = ref [||] in
  Proc.spawn e (fun () ->
      got :=
        Fabric.one_sided_write_batch fab ~src:0
          [ (1, 64, fun () -> cell := 7); (2, 64, fun () -> assert false) ]);
  Engine.run e;
  check_bool "live op ok" true (match !got.(0) with Ok () -> true | Error _ -> false);
  check_bool "dead op fails" true
    (match !got.(1) with Ok () -> false | Error _ -> true);
  check_int "live op applied" 7 !cell

(* End-to-end: the unbatched (pre-doorbell) commit pipeline passes the same
   fault-schedule sweep as the batched default — strict serializability,
   conservation, B-tree and state invariants, under crashes, partitions,
   lossy links and power failures. *)
let smoke_opts ~batching =
  { Explorer.default_opts with machines = 5; workers = 1; duration = Time.ms 30; batching }

let nemesis_sweep ~batching () =
  let report =
    Explorer.run ~opts:(smoke_opts ~batching) ~base_seed:7 ~schedules:10 ()
  in
  (match report.Explorer.failures with
  | [] -> ()
  | o :: _ ->
      Alcotest.failf "seed %d failed:@ %a" o.Explorer.seed Explorer.pp_outcome o);
  check_bool "committed transactions" true (report.Explorer.total_committed > 300)

(* Same seed, both modes: each mode is deterministic in the seed (the two
   modes legitimately interleave differently, so only within-mode replay
   must be exact). *)
let unbatched_replay_identical () =
  let seed = 7 in
  let a = Explorer.run_one ~opts:(smoke_opts ~batching:false) seed in
  let b = Explorer.run_one ~opts:(smoke_opts ~batching:false) seed in
  Alcotest.(check (list string)) "traces byte-identical" a.Explorer.trace b.Explorer.trace;
  check_int "committed identical" a.Explorer.committed b.Explorer.committed

let suites =
  [
    ( "batching",
      [
        test "batch CPU cost: issue + doorbells + one poll" batch_cpu_cost;
        test "empty batch charges nothing" empty_batch_is_free;
        test "batched reads keep descriptor order" batch_read_order;
        test "link fault delays only its own op" per_op_fault_independence;
        test "dead target fails only its own op" per_op_failure_independence;
        test "nemesis sweep passes batched" (nemesis_sweep ~batching:true);
        test "nemesis sweep passes unbatched" (nemesis_sweep ~batching:false);
        test "unbatched seed replay is exact" unbatched_replay_identical;
      ] );
  ]
