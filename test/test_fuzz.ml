open Farm_sim
open Farm_fault

(* Tier-1 smoke run of the fault-schedule fuzzer: a fixed-seed batch of
   schedules must pass every check, and replaying a seed must reproduce the
   run bit-for-bit. The full 200-schedule sweep lives in the farm_fuzz
   binary (see EXPERIMENTS.md); this keeps a small always-on slice in the
   test suite with a reduced workload so regressions in recovery or the
   nemesis surface immediately. *)

let test name fn = Alcotest.test_case name `Quick fn

let smoke_opts =
  { Explorer.default_opts with machines = 5; workers = 1; duration = Time.ms 30 }

let fuzz_smoke () =
  let report =
    Explorer.run ~opts:smoke_opts ~base_seed:1 ~schedules:25 ()
  in
  Alcotest.(check int) "schedules run" 25 report.Explorer.schedules;
  (match report.Explorer.failures with
  | [] -> ()
  | o :: _ ->
      Alcotest.failf "seed %d failed:@ %a" o.Explorer.seed Explorer.pp_outcome o);
  Alcotest.(check bool)
    "workload committed transactions" true
    (report.Explorer.total_committed > 1000)

let replay_identical () =
  (* same seed, twice: outcomes must be equal including the full trace *)
  let seed = 1 in
  let a = Explorer.run_one ~opts:smoke_opts seed in
  let b = Explorer.run_one ~opts:smoke_opts seed in
  Alcotest.(check (list string)) "traces byte-identical" a.Explorer.trace b.Explorer.trace;
  Alcotest.(check int) "committed identical" a.Explorer.committed b.Explorer.committed

let suites =
  [
    ( "fuzz",
      [ test "25 fixed-seed schedules pass" fuzz_smoke; test "seed replay is exact" replay_identical ]
    );
  ]
