open Farm_sim
open Farm_core

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let qtest = QCheck_alcotest.to_alcotest

(* {1 Object layout} *)

let header_roundtrip =
  QCheck.Test.make ~name:"header encodes lock/alloc/version" ~count:500
    QCheck.(triple bool bool (int_bound 1_000_000_000))
    (fun (locked, allocated, version) ->
      let h = Obj_layout.make ~locked ~allocated ~version in
      Obj_layout.is_locked h = locked
      && Obj_layout.is_allocated h = allocated
      && Obj_layout.version h = version)

let header_with_ops () =
  let h = Obj_layout.make ~locked:false ~allocated:true ~version:7 in
  let h = Obj_layout.with_locked h true in
  check_bool "locked" true (Obj_layout.is_locked h);
  check_int "version preserved" 7 (Obj_layout.version h);
  let h = Obj_layout.with_version h 8 in
  check_int "new version" 8 (Obj_layout.version h);
  check_bool "still locked" true (Obj_layout.is_locked h);
  let h = Obj_layout.with_allocated h false in
  check_bool "freed" false (Obj_layout.is_allocated h)

let header_cas () =
  let mem = Bytes.make 64 '\000' in
  let h0 = Obj_layout.make ~locked:false ~allocated:true ~version:1 in
  Obj_layout.set mem ~off:8 h0;
  let h1 = Obj_layout.with_locked h0 true in
  check_bool "cas succeeds" true (Obj_layout.cas mem ~off:8 ~expected:h0 ~desired:h1);
  check_bool "cas with stale expected fails" false
    (Obj_layout.cas mem ~off:8 ~expected:h0 ~desired:h0);
  check_bool "locked now" true (Obj_layout.is_locked (Obj_layout.get mem ~off:8))

let data_roundtrip () =
  let mem = Bytes.make 64 '\000' in
  Obj_layout.write_data mem ~off:0 (Bytes.of_string "hello");
  let d = Obj_layout.read_data mem ~off:0 ~len:5 in
  Alcotest.(check string) "data" "hello" (Bytes.to_string d)

(* {1 Txid / Addr} *)

let txid_ordering () =
  let a = Txid.make ~config:1 ~machine:2 ~thread:3 ~local:4 in
  let b = Txid.make ~config:1 ~machine:2 ~thread:3 ~local:5 in
  check_bool "ordered by local" true (Txid.compare a b < 0);
  check_bool "equal" true (Txid.equal a a);
  check_bool "coord key" true (Txid.coord_key a = (2, 3));
  check_bool "coord id packs machine+thread" true
    (Txid.coord_id a = Txid.coord_id b && Txid.coord_id a <> Txid.coord_id (Txid.make ~config:1 ~machine:2 ~thread:4 ~local:0))

let addr_map () =
  let a = Addr.make ~region:1 ~offset:64 in
  let b = Addr.make ~region:1 ~offset:128 in
  let m = Addr.Map.add a 1 (Addr.Map.add b 2 Addr.Map.empty) in
  check_int "map lookup" 1 (Addr.Map.find a m);
  check_bool "ordering" true (Addr.compare a b < 0)

(* {1 Config} *)

let config_backup_cms () =
  let c = Config.make ~id:1 ~members:[ 0; 1; 2; 3; 4 ] ~domains:[] ~cm:3 in
  Alcotest.(check (list int)) "successors wrap" [ 4; 0 ] (Config.backup_cms c ~k:2);
  let c2 = Config.make ~id:1 ~members:[ 0; 1; 2 ] ~domains:[] ~cm:2 in
  Alcotest.(check (list int)) "wrap from top" [ 0; 1 ] (Config.backup_cms c2 ~k:2)

let config_recovery_coordinator_deterministic () =
  let c = Config.make ~id:3 ~members:[ 1; 4; 7 ] ~domains:[] ~cm:1 in
  let txid = Txid.make ~config:2 ~machine:9 ~thread:0 ~local:5 in
  let a = Config.recovery_coordinator c txid in
  let b = Config.recovery_coordinator c txid in
  check_int "deterministic" a b;
  check_bool "member" true (Config.is_member c a)

let config_cm_must_be_member () =
  Alcotest.check_raises "cm not member"
    (Invalid_argument "Config.make: CM must be a member") (fun () ->
      ignore (Config.make ~id:1 ~members:[ 1; 2 ] ~domains:[] ~cm:5))

(* {1 Placement} *)

let mk_constraints ?(cap = 100) ~members ~domain_of ~load () =
  {
    Placement.members;
    domain_of;
    load_of = (fun m -> match List.assoc_opt m load with Some l -> l | None -> 0);
    capacity_of = (fun _ -> cap);
    replication = 3;
  }

let placement_distinct_domains () =
  (* machines 0-5 in 3 domains of 2 *)
  let c = mk_constraints ~members:[ 0; 1; 2; 3; 4; 5 ] ~domain_of:(fun m -> m / 2) ~load:[] () in
  match Placement.choose c () with
  | Some (p, bs) ->
      let all = p :: bs in
      check_int "replication" 3 (List.length all);
      check_bool "distinct domains" true (Placement.domains_distinct c all)
  | None -> Alcotest.fail "placement failed"

let placement_impossible () =
  (* only 2 domains for replication 3 *)
  let c = mk_constraints ~members:[ 0; 1; 2; 3 ] ~domain_of:(fun m -> m mod 2) ~load:[] () in
  check_bool "infeasible" true (Placement.choose c () = None)

let placement_balances_load () =
  let c =
    mk_constraints ~members:[ 0; 1; 2; 3; 4; 5 ]
      ~domain_of:(fun m -> m)
      ~load:[ (0, 10); (1, 10); (2, 10) ]
      ()
  in
  match Placement.choose c () with
  | Some (p, bs) ->
      List.iter
        (fun m -> check_bool "least-loaded picked" true (m >= 3))
        (p :: bs)
  | None -> Alcotest.fail "placement failed"

let placement_capacity () =
  let c =
    mk_constraints ~cap:5 ~members:[ 0; 1; 2; 3 ]
      ~domain_of:(fun m -> m)
      ~load:[ (0, 5) ]
      ()
  in
  match Placement.choose c () with
  | Some (p, bs) -> check_bool "full machine excluded" false (List.mem 0 (p :: bs))
  | None -> Alcotest.fail "placement failed"

let placement_colocate () =
  let c = mk_constraints ~members:[ 0; 1; 2; 3; 4; 5 ] ~domain_of:(fun m -> m) ~load:[] () in
  match Placement.choose c ~colocate_with:(4, [ 5; 1 ]) () with
  | Some (p, bs) ->
      Alcotest.(check (list int)) "locality honoured" [ 4; 5; 1 ] (p :: bs)
  | None -> Alcotest.fail "placement failed"

let placement_replacements_avoid_survivor_domains () =
  let c = mk_constraints ~members:[ 0; 1; 2; 3; 4; 5 ] ~domain_of:(fun m -> m / 2) ~load:[] () in
  match Placement.choose_replacements c ~survivors:[ 0; 2 ] ~needed:1 with
  | Some [ m ] ->
      check_bool "fresh domain" true (m / 2 <> 0 && m / 2 <> 1)
  | Some _ | None -> Alcotest.fail "replacement failed"

let placement_qcheck =
  QCheck.Test.make ~name:"placement always satisfies constraints" ~count:200
    QCheck.(pair (int_range 3 12) (int_bound 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let members = List.init n Fun.id in
      let domains = Array.init n (fun _ -> Rng.int rng (max 3 (n / 2))) in
      let c =
        mk_constraints ~members ~domain_of:(fun m -> domains.(m)) ~load:[] ()
      in
      match Placement.choose c () with
      | Some (p, bs) -> Placement.domains_distinct c (p :: bs) && List.length bs = 2
      | None ->
          (* only acceptable when fewer than 3 distinct domains exist *)
          List.length (List.sort_uniq compare (Array.to_list domains)) < 3)

(* {1 Ring log} *)

let mk_log () = Ringlog.create ~sender:0 ~receiver:1 ~capacity:4096

let dummy_record txid =
  { Wire.payload = Wire.Commit_primary { txid; ts = 0 }; truncations = []; low_bound = 0; cfg = 1 }

let tx n = Txid.make ~config:1 ~machine:0 ~thread:0 ~local:n

let ringlog_reserve_release () =
  let log = mk_log () in
  check_bool "reserve ok" true (Ringlog.reserve log 1000);
  check_bool "reserve more" true (Ringlog.reserve log 3000);
  check_bool "over capacity" false (Ringlog.reserve log 100);
  Ringlog.unreserve log 3000;
  check_bool "after release" true (Ringlog.reserve log 100)

let ringlog_append_retain_truncate () =
  let e = Engine.create () in
  let log = mk_log () in
  let seen = ref [] in
  Ringlog.set_on_append log (fun _ entry -> seen := entry :: !seen);
  check_bool "reserve" true (Ringlog.reserve log 200);
  Ringlog.consume_reservation log 100;
  Ringlog.dma_append log (dummy_record (tx 1)) ~size:100;
  check_int "delivered" 1 (List.length !seen);
  check_int "used" 100 (Ringlog.used log);
  check_int "pending count" 1 (Ringlog.pending_count log (tx 1));
  let entry = List.hd !seen in
  Ringlog.retain log entry;
  check_int "pending cleared" 0 (Ringlog.pending_count log (tx 1));
  check_int "resident" 1 (List.length (Ringlog.resident_records log (tx 1)));
  ignore (Ringlog.truncate log e (tx 1));
  check_int "space freed" 0 (Ringlog.used log);
  Ringlog.unreserve log 100 (* the unconsumed remainder of the reservation *);
  Engine.run e;
  check_bool "sender estimate updated lazily" true (Ringlog.reserve log 4000)

let ringlog_discard () =
  let e = Engine.create () in
  let log = mk_log () in
  let entry = ref None in
  Ringlog.set_on_append log (fun _ en -> entry := Some en);
  Ringlog.consume_reservation log 50;
  Ringlog.dma_append log (dummy_record (tx 2)) ~size:50;
  Ringlog.discard log e (Option.get !entry);
  check_int "freed" 0 (Ringlog.used log);
  check_int "no resident" 0 (List.length (Ringlog.resident_records log (tx 2)))

let ringlog_space_qcheck =
  QCheck.Test.make ~name:"ring log space accounting stays consistent" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 60) (int_range 10 200))
    (fun sizes ->
      let e = Engine.create () in
      let log = Ringlog.create ~sender:0 ~receiver:1 ~capacity:1_000_000 in
      let entries = ref [] in
      Ringlog.set_on_append log (fun _ en -> entries := en :: !entries);
      let total = ref 0 in
      List.iteri
        (fun i size ->
          if Ringlog.reserve log size then begin
            Ringlog.consume_reservation log size;
            Ringlog.dma_append log (dummy_record (tx i)) ~size;
            total := !total + size
          end)
        sizes;
      let used_ok = Ringlog.used log = !total in
      (* retain then truncate everything: space returns to zero *)
      List.iter (fun en -> Ringlog.retain log en) !entries;
      List.iteri (fun i _ -> ignore (Ringlog.truncate log e (tx i))) sizes;
      Engine.run e;
      used_ok && Ringlog.used log = 0)

(* {1 Wire sizes} *)

let wire_sizes_monotone () =
  let w v =
    {
      Wire.addr = Addr.make ~region:1 ~offset:0;
      version = 1;
      value = Bytes.make v 'x';
      alloc_op = Wire.Alloc_none;
      ts = 0;
    }
  in
  let p n = { Wire.txid = tx 0; regions_written = [ 1 ]; writes = List.init n (fun _ -> w 32) } in
  let size n = Wire.record_bytes { Wire.payload = Wire.Lock (p n); truncations = []; low_bound = 0; cfg = 1 } in
  check_bool "more writes, bigger record" true (size 4 > size 1);
  let with_trunc =
    Wire.record_bytes
      { Wire.payload = Wire.Lock (p 1); truncations = [ tx 1; tx 2 ]; low_bound = 0; cfg = 1 }
  in
  check_bool "piggyback adds bytes" true (with_trunc > size 1)

let suites =
  [
    ( "core.obj_layout",
      [
        qtest header_roundtrip;
        test "with ops" header_with_ops;
        test "cas" header_cas;
        test "data roundtrip" data_roundtrip;
      ] );
    ("core.ids", [ test "txid ordering" txid_ordering; test "addr map" addr_map ]);
    ( "core.config",
      [
        test "backup cms" config_backup_cms;
        test "recovery coordinator" config_recovery_coordinator_deterministic;
        test "cm must be member" config_cm_must_be_member;
      ] );
    ( "core.placement",
      [
        test "distinct domains" placement_distinct_domains;
        test "impossible" placement_impossible;
        test "balances load" placement_balances_load;
        test "capacity" placement_capacity;
        test "colocate" placement_colocate;
        test "replacements avoid survivor domains" placement_replacements_avoid_survivor_domains;
        qtest placement_qcheck;
      ] );
    ( "core.ringlog",
      [
        test "reserve/release" ringlog_reserve_release;
        test "append/retain/truncate" ringlog_append_retain_truncate;
        test "discard" ringlog_discard;
        qtest ringlog_space_qcheck;
      ] );
    ("core.wire", [ test "sizes monotone" wire_sizes_monotone ]);
  ]
