open Farm_sim
open Farm_core
open Farm_obs
open Farm_fault

(* The observability spine (lib/obs): windowed CPU utilization, exact span
   accounting for committed transactions, determinism under recording
   on/off, the bounded flight-recorder ring, and counter plumbing through
   the commit pipeline. *)

let test name fn = Alcotest.test_case name `Quick fn
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Utilization over a window must only charge busy time accumulated after
   the window's snapshot: 100us of work before the snapshot, 10us inside a
   100us window, is 10% — not 110%. *)
let cpu_utilization_window () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~threads:1 in
  Proc.spawn e (fun () ->
      Cpu.exec cpu ~cost:(Time.us 100);
      let snap = Cpu.snapshot cpu in
      let t0 = Engine.now e in
      Cpu.exec cpu ~cost:(Time.us 10);
      Proc.sleep (Time.us 90);
      let u = Cpu.utilization cpu ~since:snap ~until:(Engine.now e) in
      Alcotest.(check (float 1e-9)) "window charges only new busy time" 0.1 u;
      ignore t0);
  Engine.run e

(* A committed transaction's span segments partition its lifetime exactly:
   they sum, to the nanosecond, to the end-to-end latency (finish time -
   begin_tx time), and the commit pipeline entered every write phase. *)
let span_accounting () =
  let c = Cluster.create ~seed:7 ~machines:3 () in
  let r = Cluster.alloc_region_exn c in
  let captured = ref None in
  Cluster.run_on c ~machine:0 (fun st ->
      Obs.set_span_hook st.State.obs
        (Some
           (fun ~committed span ->
             if committed then captured := Some (span, State.now st)));
      let tx = Txn.begin_tx st ~thread:0 in
      let t0 = tx.Txn.t_started in
      let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
      Txn.write tx a (Bytes.make 8 'x');
      (match Commit.commit tx with
      | Ok () -> ()
      | Error e -> Alcotest.failf "commit aborted: %a" Txn.pp_abort e);
      Obs.set_span_hook st.State.obs None;
      match !captured with
      | None -> Alcotest.fail "span hook did not fire"
      | Some (span, at_finish) ->
          let segs = Obs.Span.segments span in
          let sum = List.fold_left (fun acc (_, ns) -> acc + ns) 0 segs in
          let total = Obs.Span.total_ns span in
          check_bool "span is nonzero" true (total > 0);
          check_int "segments sum to the total, to the ns" total sum;
          check_int "total equals observed end-to-end latency"
            (Time.to_ns (Time.sub at_finish t0))
            total;
          List.iter
            (fun p ->
              check_bool
                (Fmt.str "entered %s" (Obs.phase_name p))
                true
                (List.mem_assoc p segs))
            [ Obs.P_execute; Obs.P_lock; Obs.P_commit_backup; Obs.P_commit_primary ])

(* ...and the per-phase histograms saw that transaction. *)
let phase_hists_populated () =
  let c = Cluster.create ~seed:11 ~machines:3 () in
  let r = Cluster.alloc_region_exn c in
  Cluster.run_on c ~machine:0 (fun st ->
      match
        Api.run st ~thread:0 (fun tx ->
            let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
            Txn.write tx a (Bytes.make 8 'y'))
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "commit aborted: %a" Txn.pp_abort e);
  let hists = Cluster.merged_phase_hists c in
  check_bool "lock phase histogram nonempty" true
    (match List.assoc_opt "lock" hists with
    | Some h -> Stats.Hist.count h >= 1
    | None -> false);
  check_bool "commit-primary phase histogram nonempty" true
    (match List.assoc_opt "commit-primary" hists with
    | Some h -> Stats.Hist.count h >= 1
    | None -> false)

(* Tracing on vs off must not perturb the simulation: the same fuzz seed
   yields byte-identical event traces and identical commit counts. *)
let recording_is_inert () =
  let opts m =
    { Explorer.default_opts with machines = 5; workers = 1; duration = Time.ms 30; record = m }
  in
  let seed = 3 in
  let off = Explorer.run_one ~opts:(opts false) seed in
  let on = Explorer.run_one ~opts:(opts true) seed in
  Alcotest.(check (list string))
    "traces byte-identical with recording on/off" off.Explorer.trace on.Explorer.trace;
  check_int "committed identical" off.Explorer.committed on.Explorer.committed;
  Alcotest.(check (list string))
    "violations identical" off.Explorer.violations on.Explorer.violations;
  check_bool "recording off captures nothing" true (off.Explorer.recorder = []);
  check_bool "recording on captures protocol events" true (on.Explorer.recorder <> [])

(* A failing outcome renders its flight-recorder dump. *)
let failure_dumps_recorder () =
  let opts = { Explorer.default_opts with machines = 5; workers = 1; duration = Time.ms 30 } in
  let o = Explorer.run_one ~opts 3 in
  let forced = { o with Explorer.violations = [ "forced: injected for the test" ] } in
  let rendered = Fmt.str "%a" Explorer.pp_outcome forced in
  check_bool "dump mentions the flight recorder" true
    (contains rendered "flight recorder");
  check_bool "dump carries event lines" true
    (List.length forced.Explorer.recorder > 0)

(* The ring: disabled sinks record nothing; enabled sinks are bounded to
   [capacity] events, overwriting oldest-first. *)
let ring_bounds () =
  let e = Engine.create () in
  let o = Obs.create ~capacity:8 e ~machine:0 in
  for _ = 1 to 5 do
    Obs.event o Obs.K_suspect ~a:1 ~b:0 ~c:0
  done;
  check_int "disabled sink records nothing" 0 (Obs.total_events o);
  Alcotest.(check (list string)) "empty dump" [] (List.map snd (Obs.events o));
  Obs.set_enabled o true;
  for i = 1 to 20 do
    Obs.event o Obs.K_rdma_read ~a:i ~b:64 ~c:0
  done;
  check_int "all recordings counted" 20 (Obs.total_events o);
  check_int "ring bounded to capacity" 8 (List.length (Obs.events o));
  (* oldest-first: the surviving events are #13..#20, whose dst runs 13..20 *)
  let lines = List.map snd (Obs.events o) in
  check_bool "oldest surviving event is #13" true (contains (List.hd lines) "dst=m13")

(* The counter spine end to end: a committed write transaction bumps the
   coordinator's commit counter and the primaries' log/lock counters. *)
let counters_plumbed () =
  let c = Cluster.create ~seed:5 ~machines:3 () in
  let r = Cluster.alloc_region_exn c in
  Cluster.run_on c ~machine:0 (fun st ->
      match
        Api.run st ~thread:0 (fun tx ->
            let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
            Txn.write tx a (Bytes.make 8 'z'))
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "commit aborted: %a" Txn.pp_abort e);
  (* let lease renewal timers fire at least once *)
  Cluster.run_for c ~d:(Time.ms 30);
  let coord = (Cluster.machine c 0).State.obs in
  check_bool "coordinator counted the commit" true (Obs.counter coord Obs.C_tx_commit >= 1);
  check_bool "coordinator appended log records" true (Obs.counter coord Obs.C_log_append >= 1);
  let merged = Cluster.merged_counters c in
  let get name = Option.value ~default:0 (List.assoc_opt name merged) in
  check_bool "someone granted locks" true (get "lock-ok" >= 1);
  check_bool "log records were processed" true (get "log-record" >= 1);
  check_bool "lease traffic flowed" true (get "lease-renewal" >= 1)

let suites =
  [
    ( "obs",
      [
        test "cpu utilization is windowed" cpu_utilization_window;
        test "span segments sum to end-to-end latency" span_accounting;
        test "phase histograms populated" phase_hists_populated;
        test "recording on/off does not perturb a fuzz seed" recording_is_inert;
        test "failing outcome dumps the flight recorder" failure_dumps_recorder;
        test "flight-recorder ring is gated and bounded" ring_bounds;
        test "counters plumbed through the stack" counters_plumbed;
      ] );
  ]
