open Farm_sim
open Farm_core
open Farm_obs
open Farm_fault

(* The observability spine (lib/obs): windowed CPU utilization, exact span
   accounting for committed transactions, determinism under recording
   on/off, the bounded flight-recorder ring, and counter plumbing through
   the commit pipeline. *)

let test name fn = Alcotest.test_case name `Quick fn
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Utilization over a window must only charge busy time accumulated after
   the window's snapshot: 100us of work before the snapshot, 10us inside a
   100us window, is 10% — not 110%. *)
let cpu_utilization_window () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~threads:1 in
  Proc.spawn e (fun () ->
      Cpu.exec cpu ~cost:(Time.us 100);
      let snap = Cpu.snapshot cpu in
      let t0 = Engine.now e in
      Cpu.exec cpu ~cost:(Time.us 10);
      Proc.sleep (Time.us 90);
      let u = Cpu.utilization cpu ~since:snap ~until:(Engine.now e) in
      Alcotest.(check (float 1e-9)) "window charges only new busy time" 0.1 u;
      ignore t0);
  Engine.run e

(* A committed transaction's span segments partition its lifetime exactly:
   they sum, to the nanosecond, to the end-to-end latency (finish time -
   begin_tx time), and the commit pipeline entered every write phase. *)
let span_accounting () =
  let c = Cluster.create ~seed:7 ~machines:3 () in
  let r = Cluster.alloc_region_exn c in
  let captured = ref None in
  Cluster.run_on c ~machine:0 (fun st ->
      Obs.set_span_hook st.State.obs
        (Some
           (fun ~committed span ->
             if committed then captured := Some (span, State.now st)));
      let tx = Txn.begin_tx st ~thread:0 in
      let t0 = tx.Txn.t_started in
      let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
      Txn.write tx a (Bytes.make 8 'x');
      (match Commit.commit tx with
      | Ok () -> ()
      | Error e -> Alcotest.failf "commit aborted: %a" Txn.pp_abort e);
      Obs.set_span_hook st.State.obs None;
      match !captured with
      | None -> Alcotest.fail "span hook did not fire"
      | Some (span, at_finish) ->
          let segs = Obs.Span.segments span in
          let sum = List.fold_left (fun acc (_, ns) -> acc + ns) 0 segs in
          let total = Obs.Span.total_ns span in
          check_bool "span is nonzero" true (total > 0);
          check_int "segments sum to the total, to the ns" total sum;
          check_int "total equals observed end-to-end latency"
            (Time.to_ns (Time.sub at_finish t0))
            total;
          List.iter
            (fun p ->
              check_bool
                (Fmt.str "entered %s" (Obs.phase_name p))
                true
                (List.mem_assoc p segs))
            [ Obs.P_execute; Obs.P_lock; Obs.P_commit_backup; Obs.P_commit_primary ])

(* ...and the per-phase histograms saw that transaction. *)
let phase_hists_populated () =
  let c = Cluster.create ~seed:11 ~machines:3 () in
  let r = Cluster.alloc_region_exn c in
  Cluster.run_on c ~machine:0 (fun st ->
      match
        Api.run st ~thread:0 (fun tx ->
            let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
            Txn.write tx a (Bytes.make 8 'y'))
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "commit aborted: %a" Txn.pp_abort e);
  let hists = Cluster.merged_phase_hists c in
  check_bool "lock phase histogram nonempty" true
    (match List.assoc_opt "lock" hists with
    | Some h -> Stats.Hist.count h >= 1
    | None -> false);
  check_bool "commit-primary phase histogram nonempty" true
    (match List.assoc_opt "commit-primary" hists with
    | Some h -> Stats.Hist.count h >= 1
    | None -> false)

(* Tracing on vs off must not perturb the simulation: the same fuzz seed
   yields byte-identical event traces and identical commit counts. *)
let recording_is_inert () =
  let opts m =
    { Explorer.default_opts with machines = 5; workers = 1; duration = Time.ms 30; record = m }
  in
  let seed = 3 in
  let off = Explorer.run_one ~opts:(opts false) seed in
  let on = Explorer.run_one ~opts:(opts true) seed in
  Alcotest.(check (list string))
    "traces byte-identical with recording on/off" off.Explorer.trace on.Explorer.trace;
  check_int "committed identical" off.Explorer.committed on.Explorer.committed;
  Alcotest.(check (list string))
    "violations identical" off.Explorer.violations on.Explorer.violations;
  check_bool "recording off captures nothing" true (off.Explorer.recorder = []);
  check_bool "recording on captures protocol events" true (on.Explorer.recorder <> [])

(* A failing outcome renders its flight-recorder dump. *)
let failure_dumps_recorder () =
  let opts = { Explorer.default_opts with machines = 5; workers = 1; duration = Time.ms 30 } in
  let o = Explorer.run_one ~opts 3 in
  let forced = { o with Explorer.violations = [ "forced: injected for the test" ] } in
  let rendered = Fmt.str "%a" Explorer.pp_outcome forced in
  check_bool "dump mentions the flight recorder" true
    (contains rendered "flight recorder");
  check_bool "dump carries event lines" true
    (List.length forced.Explorer.recorder > 0)

(* The ring: disabled sinks record nothing; enabled sinks are bounded to
   [capacity] events, overwriting oldest-first. *)
let ring_bounds () =
  let e = Engine.create () in
  let o = Obs.create ~capacity:8 e ~machine:0 in
  for _ = 1 to 5 do
    Obs.event o Obs.K_suspect ~a:1 ~b:0 ~c:0
  done;
  check_int "disabled sink records nothing" 0 (Obs.total_events o);
  Alcotest.(check (list string)) "empty dump" [] (List.map snd (Obs.events o));
  Obs.set_enabled o true;
  for i = 1 to 20 do
    Obs.event o Obs.K_rdma_read ~a:i ~b:64 ~c:0
  done;
  check_int "all recordings counted" 20 (Obs.total_events o);
  check_int "ring bounded to capacity" 8 (List.length (Obs.events o));
  (* oldest-first: the surviving events are #13..#20, whose dst runs 13..20 *)
  let lines = List.map snd (Obs.events o) in
  check_bool "oldest surviving event is #13" true (contains (List.hd lines) "dst=m13")

(* The counter spine end to end: a committed write transaction bumps the
   coordinator's commit counter and the primaries' log/lock counters. *)
let counters_plumbed () =
  let c = Cluster.create ~seed:5 ~machines:3 () in
  let r = Cluster.alloc_region_exn c in
  Cluster.run_on c ~machine:0 (fun st ->
      match
        Api.run st ~thread:0 (fun tx ->
            let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
            Txn.write tx a (Bytes.make 8 'z'))
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "commit aborted: %a" Txn.pp_abort e);
  (* let lease renewal timers fire at least once *)
  Cluster.run_for c ~d:(Time.ms 30);
  let coord = (Cluster.machine c 0).State.obs in
  check_bool "coordinator counted the commit" true (Obs.counter coord Obs.C_tx_commit >= 1);
  check_bool "coordinator appended log records" true (Obs.counter coord Obs.C_log_append >= 1);
  let merged = Cluster.merged_counters c in
  let get name = Option.value ~default:0 (List.assoc_opt name merged) in
  check_bool "someone granted locks" true (get "lock-ok" >= 1);
  check_bool "log records were processed" true (get "log-record" >= 1);
  check_bool "lease traffic flowed" true (get "lease-renewal" >= 1)

(* {1 The causal tracer and the timeline sampler} *)

let count_sub s sub =
  let n = String.length s and m = String.length sub in
  let c = ref 0 in
  for i = 0 to n - m do
    if String.sub s i m = sub then incr c
  done;
  !c

(* {2 A minimal hand-rolled JSON parser} — the container carries no JSON
   library, and parsing our own exports back is exactly the schema check
   a Perfetto/consumer round-trip needs. *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect ch =
    if peek () = ch then advance ()
    else raise (Bad_json (Fmt.str "expected %c at byte %d" ch !pos))
  in
  let parse_lit lit v =
    String.iter expect lit;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance (); Buffer.contents b
      | '\\' ->
          advance ();
          (match peek () with
          | 'u' ->
              advance ();
              for _ = 1 to 4 do advance () done;
              Buffer.add_char b '?'
          | c ->
              advance ();
              Buffer.add_char b
                (match c with 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | c -> c));
          go ()
      | '\255' -> raise (Bad_json "unterminated string")
      | c -> advance (); Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num = function '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false in
    while is_num (peek ()) do advance () done;
    if !pos = start then raise (Bad_json (Fmt.str "value expected at byte %d" start));
    J_num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); J_obj [])
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            if peek () = ',' then (advance (); members ()) else expect '}'
          in
          members ();
          J_obj (List.rev !fields)
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); J_arr [])
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            if peek () = ',' then (advance (); elements ()) else expect ']'
          in
          elements ();
          J_arr (List.rev !items)
        end
    | '"' -> J_str (parse_string ())
    | 't' -> parse_lit "true" (J_bool true)
    | 'f' -> parse_lit "false" (J_bool false)
    | 'n' -> parse_lit "null" J_null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad_json "trailing bytes after document");
  v

let mem k = function J_obj l -> List.assoc_opt k l | _ -> None
let jstr = function Some (J_str s) -> s | _ -> Alcotest.fail "expected a JSON string"
let jnum = function Some (J_num f) -> f | _ -> Alcotest.fail "expected a JSON number"

(* {2 Shared fixture}: a small traced + sampled cluster, committing from a
   non-primary machine so LOCK and COMMIT-BACKUP records cross the
   fabric. *)
let run_traced_cluster seed =
  let c = Cluster.create ~seed ~machines:3 () in
  Cluster.set_tracing c true;
  Cluster.start_sampling c ~until:(Time.ms 50);
  let r = Cluster.alloc_region_exn c in
  let coord = (r.Wire.primary + 1) mod 3 in
  let cell =
    Cluster.run_on c ~machine:coord (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
              Txn.write tx a (Bytes.make 8 '\000');
              a)
        with
        | Ok a -> a
        | Error e -> Alcotest.failf "setup: %a" Txn.pp_abort e)
  in
  for i = 1 to 5 do
    Cluster.run_on c ~machine:coord (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              ignore (Txn.read tx cell ~len:8);
              Txn.write tx cell (Bytes.make 8 (Char.chr (64 + i))))
        with
        | Ok () -> ()
        | Error e -> Alcotest.failf "tx %d: %a" i Txn.pp_abort e)
  done;
  (* run past the sampling horizon so the tick stops and the engine can
     drain *)
  Cluster.run_for c ~d:(Time.ms 60);
  c

(* Sampler delta math against hand-counted ops: a Cumulative series rows
   the per-interval delta of a monotonic counter, a Level series rows the
   instantaneous value, both at exact tick instants, stopping at the
   horizon. *)
let sampler_delta_math () =
  let e = Engine.create () in
  let tl = Timeline.create e ~machine:0 in
  let work = ref 0 and level = ref 0 in
  Timeline.add_series tl ~name:"ops" ~kind:Timeline.Cumulative (fun () -> !work);
  Timeline.add_series tl ~name:"depth" ~kind:Timeline.Level (fun () -> !level);
  let bumps = [| 3; 0; 7; 2; 5 |] in
  Array.iteri
    (fun i n ->
      Engine.schedule e
        ~at:(Time.ns ((i * 1000) + 500))
        (fun () ->
          work := !work + n;
          level := n))
    bumps;
  Timeline.start tl ~interval:(Time.ns 1000) ~until:(Time.ns 5000);
  Engine.run e;
  check_bool "sampler stopped at the horizon" true (not (Timeline.running tl));
  check_int "engine drained (no perpetual tick)" 0 (Engine.pending e);
  let rows = Timeline.rows tl in
  check_int "one row per interval" (Array.length bumps) (List.length rows);
  List.iteri
    (fun i (t, vals) ->
      check_int (Fmt.str "tick %d instant" i) ((i + 1) * 1000) t;
      check_int (Fmt.str "interval %d delta" i) bumps.(i) vals.(0);
      check_int (Fmt.str "interval %d level" i) bumps.(i) vals.(1))
    rows

(* The cluster sampler's commit deltas, summed over every machine and
   interval, equal the commit counters exactly. *)
let sampler_matches_counters () =
  let c = run_traced_cluster 33 in
  check_bool "the fixture committed" true (Cluster.total_committed c >= 6);
  let total = ref 0 in
  Array.iter
    (fun (st : State.t) ->
      let tl = Obs.timeline st.State.obs in
      let idx = ref (-1) in
      List.iteri (fun i n -> if n = "commits" then idx := i) (Timeline.series_names tl);
      check_bool "commits series registered" true (!idx >= 0);
      List.iter (fun (_, vals) -> total := !total + vals.(!idx)) (Timeline.rows tl))
    c.Cluster.machines;
  check_int "sampled deltas sum to the counter total" (Cluster.total_committed c) !total

(* Same seed, two runs: both export artifacts are byte-identical. *)
let dumps_deterministic () =
  let c1 = run_traced_cluster 33 in
  let c2 = run_traced_cluster 33 in
  check_bool "trace dumps byte-identical" true
    (String.equal (Cluster.trace_dump c1) (Cluster.trace_dump c2));
  check_bool "timeline dumps byte-identical" true
    (String.equal (Cluster.timeline_dump c1) (Cluster.timeline_dump c2))

(* Tracing on vs off must not perturb a fuzz schedule, and tracing on is
   itself deterministic: same seed, byte-identical JSON. *)
let trace_export_deterministic () =
  let opts p =
    {
      Explorer.default_opts with
      machines = 5;
      workers = 1;
      duration = Time.ms 20;
      perfetto = p;
    }
  in
  let seed = 9 in
  let a = Explorer.run_one ~opts:(opts true) seed in
  let b = Explorer.run_one ~opts:(opts true) seed in
  let off = Explorer.run_one ~opts:(opts false) seed in
  (match (a.Explorer.perfetto_json, b.Explorer.perfetto_json) with
  | Some ja, Some jb -> check_bool "same seed, byte-identical trace JSON" true (String.equal ja jb)
  | _ -> Alcotest.fail "perfetto json missing");
  check_bool "tracing off renders no json" true (off.Explorer.perfetto_json = None);
  Alcotest.(check (list string))
    "histories identical with tracing on/off" off.Explorer.trace a.Explorer.trace;
  check_int "committed identical" off.Explorer.committed a.Explorer.committed;
  (* the abort breakdown rides on every outcome *)
  List.iter
    (fun k ->
      check_bool (Fmt.str "%s cause reported" k) true
        (match List.assoc_opt k a.Explorer.abort_causes with Some v -> v >= 0 | None -> false))
    [ "lock-refused"; "validate-failed"; "timeout"; "other" ]

(* The span buffer is gated and bounded: a disabled tracer records
   nothing; an enabled one keeps the newest [capacity] slots. *)
let tracer_ring_bounded () =
  let e = Engine.create () in
  let tr = Tracer.create ~capacity:4 e ~machine:0 in
  Tracer.slice tr ~tid:0 ~step:Tracer.T_execute ~start:0 ~arg:0;
  check_int "disabled tracer records nothing" 0 (Tracer.total tr);
  Tracer.set_enabled tr true;
  for i = 1 to 10 do
    Tracer.slice tr ~tid:0 ~step:Tracer.T_execute ~start:(i * 10) ~arg:i
  done;
  check_int "all recordings counted" 10 (Tracer.total tr);
  let json = Tracer.export_json [ tr ] in
  check_int "export holds exactly capacity slices" 4 (count_sub json "\"ph\":\"X\"");
  (* newest survive: slice #10 started at ts 100 ns = 0.100 us *)
  check_int "newest slice survived" 1 (count_sub json "\"ts\":0.100,")

(* Parse the trace export back and schema-check it: every event carries
   the required fields, flow starts pair with finishes, and LOCK /
   COMMIT-BACKUP arrows cross machines. *)
let trace_schema_sane () =
  let c = run_traced_cluster 21 in
  let root = parse_json (Cluster.trace_dump c) in
  let events =
    match mem "traceEvents" root with
    | Some (J_arr l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  check_bool "trace has events" true (List.length events > 0);
  let slices = Hashtbl.create 64 in
  let starts = Hashtbl.create 64 in
  let ends = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      let ph = jstr (mem "ph" ev) in
      let ts = jnum (mem "ts" ev) in
      let pid = int_of_float (jnum (mem "pid" ev)) in
      let tid = int_of_float (jnum (mem "tid" ev)) in
      check_bool "known phase" true (List.mem ph [ "X"; "M"; "i"; "s"; "f" ]);
      check_bool "timestamp nonnegative" true (ts >= 0.0);
      check_bool "named" true (String.length (jstr (mem "name" ev)) > 0);
      match ph with
      | "X" ->
          check_bool "slice duration nonnegative" true (jnum (mem "dur" ev) >= 0.0);
          (* several slices can share a start instant on one thread; keep
             them all *)
          Hashtbl.add slices (pid, tid, ts) (jstr (mem "name" ev))
      | "s" -> Hashtbl.replace starts (int_of_float (jnum (mem "id" ev))) (pid, tid, ts)
      | "f" -> Hashtbl.replace ends (int_of_float (jnum (mem "id" ev))) (pid, tid, ts)
      | _ -> ())
    events;
  check_bool "trace carries flows" true (Hashtbl.length starts > 0);
  check_bool "every flow start has a finish" true
    (Hashtbl.fold (fun id _ acc -> acc && Hashtbl.mem ends id) starts true);
  let cross step =
    Hashtbl.fold
      (fun id (spid, stid, sts) acc ->
        acc
        ||
        match Hashtbl.find_opt ends id with
        | Some (fpid, ftid, fts) ->
            fpid <> spid
            && List.mem ("log-append " ^ step) (Hashtbl.find_all slices (spid, stid, sts))
            && List.mem ("log-process " ^ step) (Hashtbl.find_all slices (fpid, ftid, fts))
        | None -> false)
      starts false
  in
  check_bool "cross-machine LOCK arrow" true (cross "LOCK");
  check_bool "cross-machine COMMIT-BACKUP arrow" true (cross "COMMIT-BACKUP")

(* ...and the timeline export: aligned columns, t_ns leading, and the
   merged commits column summing to the cluster's commit total. *)
let timeline_schema_sane () =
  let c = run_traced_cluster 21 in
  let root = parse_json (Cluster.timeline_dump c) in
  check_bool "interval is positive" true (jnum (mem "interval_ns" root) > 0.0);
  let series =
    match mem "series" root with
    | Some (J_arr l) -> List.map (function J_str s -> s | _ -> Alcotest.fail "series") l
    | _ -> Alcotest.fail "no series array"
  in
  check_bool "t_ns leads the columns" true (List.hd series = "t_ns");
  check_bool "commits column present" true (List.mem "commits" series);
  let width = List.length series in
  let commits_col = ref 0 in
  List.iteri (fun i n -> if n = "commits" then commits_col := i) series;
  let rows =
    match mem "rows" root with Some (J_arr l) -> l | _ -> Alcotest.fail "no rows array"
  in
  check_bool "timeline has rows" true (rows <> []);
  let sum = ref 0 in
  List.iter
    (function
      | J_arr cells ->
          check_int "row width matches series" width (List.length cells);
          sum := !sum + int_of_float (List.nth cells !commits_col |> fun v -> jnum (Some v))
      | _ -> Alcotest.fail "row is not an array")
    rows;
  check_int "merged commits column sums to the counter total"
    (Cluster.total_committed c) !sum

let suites =
  [
    ( "obs",
      [
        test "cpu utilization is windowed" cpu_utilization_window;
        test "span segments sum to end-to-end latency" span_accounting;
        test "phase histograms populated" phase_hists_populated;
        test "recording on/off does not perturb a fuzz seed" recording_is_inert;
        test "failing outcome dumps the flight recorder" failure_dumps_recorder;
        test "flight-recorder ring is gated and bounded" ring_bounds;
        test "counters plumbed through the stack" counters_plumbed;
      ] );
    ( "obs.trace",
      [
        test "sampler delta math vs hand-counted ops" sampler_delta_math;
        test "sampler deltas match the commit counters" sampler_matches_counters;
        test "trace and timeline dumps are deterministic" dumps_deterministic;
        test "tracing on/off: same history, byte-identical JSON" trace_export_deterministic;
        test "tracer span buffer is gated and bounded" tracer_ring_bounded;
        test "trace export parses and cross-machine arrows pair" trace_schema_sane;
        test "timeline export parses and columns align" timeline_schema_sane;
      ] );
  ]
