(* farm-cli: run FaRM workloads on a simulated cluster with custom
   parameters and optional failure injection.

     dune exec bin/farm_cli.exe -- tatp --machines 8 --workers 8 --kill 40
     dune exec bin/farm_cli.exe -- tpcc --warehouses 4
     dune exec bin/farm_cli.exe -- kv --keys 20000
     dune exec bin/farm_cli.exe -- bank --accounts 128 --kill-cm 30      *)

open Farm_sim
open Farm_core
open Farm_workloads
open Cmdliner

type common = {
  machines : int;
  seed : int;
  workers : int;
  duration_ms : int;
  lease_ms : int;
  kill_ms : int option;  (* kill a non-CM machine at this offset *)
  kill_cm_ms : int option;
  power_cycle_ms : int option;  (* whole-cluster power failure *)
  stats : bool;  (* print per-machine counters and phase histograms *)
  perfetto : string option;  (* write a causal trace of the run here *)
  protocol : Params.protocol;
  blame : bool;  (* latency attribution: category table, heat, critical paths *)
}

let common_term =
  let machines =
    Arg.(value & opt int 6 & info [ "machines"; "m" ] ~doc:"Cluster size.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic RNG seed.") in
  let workers =
    Arg.(value & opt int 6 & info [ "workers"; "w" ] ~doc:"Workers per machine.")
  in
  let duration_ms =
    Arg.(value & opt int 100 & info [ "duration"; "d" ] ~doc:"Measured milliseconds.")
  in
  let lease_ms = Arg.(value & opt int 5 & info [ "lease" ] ~doc:"Lease duration (ms).") in
  let kill_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill" ] ~doc:"Kill a non-CM machine N ms into the measurement.")
  in
  let kill_cm_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-cm" ] ~doc:"Kill the configuration manager N ms in.")
  in
  let power_cycle_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "power-cycle" ]
          ~doc:"Power-fail the whole cluster N ms in and reboot it from NVRAM.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "After the run, print the per-machine protocol counters and the merged \
             commit-phase / recovery-stage latency tables.")
  in
  let perfetto =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Capture a causal trace of the whole run and write it to $(docv) as Chrome \
             trace-event JSON (open at ui.perfetto.dev). Tracing never perturbs the \
             simulation.")
  in
  let protocol =
    Arg.(
      value
      & opt (enum [ ("baseline", Params.Validate_at_commit); ("snapshot", Params.Snapshot) ])
          Params.Validate_at_commit
      & info [ "protocol" ]
          ~doc:
            "Read/validate stack: $(b,baseline) (SOSP'15 validate-at-commit) or \
             $(b,snapshot) (FaRMv2-style opacity via global time; enables the \
             snapshot-read / ro-commit / wm-trim counters and the commit-wait phase \
             shown under $(b,--stats)).")
  in
  let blame =
    Arg.(
      value & flag
      & info [ "blame" ]
          ~doc:
            "Attribute every transaction's latency to exclusive categories (admission, \
             execute, lock-wait, logring-wait, nic-issue, propagation, poll, \
             commit-wait, truncate) and print the category table, the per-region heat \
             ranking, and the slowest transactions' cross-machine critical paths. With \
             $(b,--perfetto), critical-path slices are tagged $(i,crit=1). \
             Determinism-inert: the simulated history is unchanged.")
  in
  let mk machines seed workers duration_ms lease_ms kill_ms kill_cm_ms power_cycle_ms stats
      perfetto protocol blame =
    {
      machines;
      seed;
      workers;
      duration_ms;
      lease_ms;
      kill_ms;
      kill_cm_ms;
      power_cycle_ms;
      stats;
      perfetto;
      protocol;
      blame;
    }
  in
  Term.(
    const mk $ machines $ seed $ workers $ duration_ms $ lease_ms $ kill_ms $ kill_cm_ms
    $ power_cycle_ms $ stats $ perfetto $ protocol $ blame)

let params_of c =
  { Params.default with Params.lease_duration = Time.ms c.lease_ms; protocol = c.protocol }

let schedule_kills cluster c =
  let schedule offset pick =
    Engine.schedule cluster.Cluster.engine
      ~at:(Time.add (Cluster.now cluster) (Time.ms offset))
      (fun () ->
        let victim = pick () in
        Fmt.pr "killing machine %d at t=%a@." victim Time.pp (Cluster.now cluster);
        Cluster.kill cluster victim)
  in
  Option.iter
    (fun off ->
      schedule off (fun () ->
          let cm = (Cluster.machine cluster 0).State.config.Config.cm in
          (cm + 1) mod c.machines))
    c.kill_ms;
  Option.iter
    (fun off -> schedule off (fun () -> (Cluster.machine cluster 0).State.config.Config.cm))
    c.kill_cm_ms;
  Option.iter
    (fun off ->
      Engine.schedule cluster.Cluster.engine
        ~at:(Time.add (Cluster.now cluster) (Time.ms off))
        (fun () ->
          Fmt.pr "power failure: rebooting the whole cluster from NVRAM at t=%a@." Time.pp
            (Cluster.now cluster);
          Cluster.power_cycle cluster))
    c.power_cycle_ms

let report cluster c (stats : Driver.stats) =
  let duration = Time.ms c.duration_ms in
  Fmt.pr "@.results over %a:@." Time.pp duration;
  Fmt.pr "  committed ops        %d (%.3f per us)@."
    (Stats.Counter.get stats.Driver.ops)
    (Driver.throughput_per_us stats ~duration);
  Fmt.pr "  failed ops           %d@." (Stats.Counter.get stats.Driver.failures);
  Fmt.pr "  median latency       %.1f us@."
    (float_of_int (Stats.Hist.percentile stats.Driver.latency 50.) /. 1e3);
  Fmt.pr "  99th latency         %.1f us@."
    (float_of_int (Stats.Hist.percentile stats.Driver.latency 99.) /. 1e3);
  Fmt.pr "  commits/aborts       %d / %d@." (Cluster.total_committed cluster)
    (Cluster.total_aborted cluster);
  if c.kill_ms <> None || c.kill_cm_ms <> None || c.power_cycle_ms <> None then begin
    Fmt.pr "@.recovery milestones:@.";
    List.iter
      (fun (tag, m, at) ->
        if tag <> "region-recovered" then Fmt.pr "  %-16s m%-3d %a@." tag m Time.pp at)
      (Cluster.milestones cluster)
  end;
  if c.stats then begin
    Fmt.pr "@.%a" Cluster.pp_stats cluster;
    Fmt.pr "@.abort breakdown: %a@."
      Fmt.(list ~sep:(any " ") (pair ~sep:(any "=") string int))
      (Cluster.abort_breakdown cluster);
    (* snapshot-protocol counters (nonzero only under --protocol snapshot) *)
    let snap_counters =
      List.filter
        (fun (n, _) ->
          List.mem n [ "snap-read"; "snap-chain-read"; "ro-commit"; "wm-trim" ])
        (Cluster.merged_counters cluster)
    in
    if snap_counters <> [] then
      Fmt.pr "@.snapshot protocol: %a@."
        Fmt.(list ~sep:(any " ") (pair ~sep:(any "=") string int))
        snap_counters;
    Fmt.pr "@.nic traffic:@.";
    Array.iter
      (fun (st : State.t) ->
        let nic = Farm_net.Fabric.nic cluster.Cluster.fabric st.State.id in
        Fmt.pr "  m%-3d %8d ops %12d bytes@." st.State.id (Farm_net.Nic.ops nic)
          (Farm_net.Nic.bytes_total nic))
      cluster.Cluster.machines
  end;
  if c.blame then begin
    let us ns = float_of_int ns /. 1e3 in
    Fmt.pr "@.latency blame (exclusive categories, cluster totals):@.";
    let hists = Cluster.merged_blame_hists cluster in
    List.iter
      (fun (name, total) ->
        match List.assoc_opt name hists with
        | Some h ->
            Fmt.pr "  %-12s %12.1f us  (n=%d p50=%.1f p99=%.1f us)@." name (us total)
              (Stats.Hist.count h)
              (us (Stats.Hist.percentile h 50.))
              (us (Stats.Hist.percentile h 99.))
        | None -> Fmt.pr "  %-12s %12.1f us@." name (us total))
      (Cluster.blame_totals cluster);
    (* ns-exact reconciliation with the phase accounting (DESIGN.md §9) *)
    let sum l = List.fold_left (fun acc (_, v) -> acc + v) 0 l in
    let blame_sum =
      sum (List.filter (fun (n, _) -> n <> "admission") (Cluster.blame_totals cluster))
    in
    Fmt.pr "  (blame sum %d ns, phase sum %d ns)@." blame_sum
      (sum (Cluster.phase_totals cluster));
    (match Cluster.heat_report cluster with
    | [] -> ()
    | heat ->
        Fmt.pr "@.region heat (hottest first, score = access + 4*conflict):@.";
        List.iteri
          (fun i (h : Cluster.heat) ->
            if i < 10 then
              Fmt.pr "  r%-4d score %8d  access %8d  conflict %6d@." h.Cluster.h_region
                h.Cluster.h_score h.Cluster.h_access h.Cluster.h_conflict)
          heat);
    match Cluster.critpaths cluster ~k:3 with
    | [] -> ()
    | paths ->
        Fmt.pr "@.slowest transactions (critical-path hops starred):@.";
        List.iter print_string paths
  end;
  match c.perfetto with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc
        (if c.blame then Cluster.trace_dump_critical cluster ~k:8
         else Cluster.trace_dump cluster);
      close_out oc;
      Fmt.pr "@.perfetto trace written to %s (open at ui.perfetto.dev)@." file

let run_workload c ~setup =
  let cluster = Cluster.create ~seed:c.seed ~params:(params_of c) ~machines:c.machines () in
  if c.perfetto <> None then Cluster.set_tracing cluster true;
  let op = setup cluster in
  (* armed after load so the exemplars (and their critical paths) come from
     the measured workload, not the bulk-load phase *)
  if c.blame then Cluster.set_blame cluster true;
  schedule_kills cluster c;
  let stats =
    Driver.run cluster ~workers:c.workers ~warmup:(Time.ms 5)
      ~duration:(Time.ms c.duration_ms) ~op
  in
  report cluster c stats

(* {1 Subcommands} *)

let tatp_cmd =
  let subscribers =
    Arg.(value & opt int 3000 & info [ "subscribers" ] ~doc:"TATP database size.")
  in
  let run c subscribers =
    run_workload c ~setup:(fun cluster ->
        Fmt.pr "loading TATP (%d subscribers)...@." subscribers;
        let t = Tatp.create cluster ~subscribers ~regions_per_table:2 in
        Tatp.load cluster t;
        Tatp.op t)
  in
  Cmd.v (Cmd.info "tatp" ~doc:"Run the TATP benchmark.")
    Term.(const run $ common_term $ subscribers)

let tpcc_cmd =
  let warehouses = Arg.(value & opt int 4 & info [ "warehouses" ] ~doc:"Warehouse count.") in
  let run c warehouses =
    run_workload c ~setup:(fun cluster ->
        Fmt.pr "loading TPC-C (%d warehouses)...@." warehouses;
        let scale = { Tpcc.default_scale with Tpcc.warehouses } in
        let t = Tpcc.create cluster ~scale () in
        Tpcc.load cluster t;
        Tpcc.op t)
  in
  Cmd.v (Cmd.info "tpcc" ~doc:"Run the TPC-C benchmark.")
    Term.(const run $ common_term $ warehouses)

let kv_cmd =
  let keys = Arg.(value & opt int 10_000 & info [ "keys" ] ~doc:"Key count.") in
  let run c keys =
    run_workload c ~setup:(fun cluster ->
        Fmt.pr "loading %d keys...@." keys;
        let t = Kvlookup.create cluster ~keys ~regions:4 in
        Kvlookup.load cluster t;
        Kvlookup.op t)
  in
  Cmd.v (Cmd.info "kv" ~doc:"Run the uniform key-value lookup workload.")
    Term.(const run $ common_term $ keys)

let bank_cmd =
  let accounts = Arg.(value & opt int 64 & info [ "accounts" ] ~doc:"Account count.") in
  let run c accounts =
    let cluster = Cluster.create ~seed:c.seed ~params:(params_of c) ~machines:c.machines () in
    if c.perfetto <> None then Cluster.set_tracing cluster true;
    let region = Cluster.alloc_region_exn cluster in
    let cells =
      Cluster.run_on cluster ~machine:0 (fun st ->
          match
            Api.run_retry st ~thread:0 (fun tx ->
                Array.init accounts (fun _ ->
                    let a = Txn.alloc tx ~size:8 ~region:region.Wire.rid () in
                    let b = Bytes.create 8 in
                    Bytes.set_int64_le b 0 1000L;
                    Txn.write tx a b;
                    a))
          with
          | Ok v -> v
          | Error e -> Fmt.failwith "setup: %a" Txn.pp_abort e)
    in
    if c.blame then Cluster.set_blame cluster true;
    schedule_kills cluster c;
    let stats =
      Driver.run cluster ~workers:c.workers ~warmup:(Time.ms 5)
        ~duration:(Time.ms c.duration_ms) ~op:(fun ctx ->
          let rng = ctx.Driver.rng in
          let a = Rng.int rng accounts in
          let b = (a + 1 + Rng.int rng (accounts - 1)) mod accounts in
          match
            Api.run_retry ~attempts:8 ctx.Driver.st ~thread:ctx.Driver.thread (fun tx ->
                let va = Int64.to_int (Bytes.get_int64_le (Txn.read tx cells.(a) ~len:8) 0) in
                let vb = Int64.to_int (Bytes.get_int64_le (Txn.read tx cells.(b) ~len:8) 0) in
                if va > 0 then begin
                  let wa = Bytes.create 8 and wb = Bytes.create 8 in
                  Bytes.set_int64_le wa 0 (Int64.of_int (va - 1));
                  Bytes.set_int64_le wb 0 (Int64.of_int (vb + 1));
                  Txn.write tx cells.(a) wa;
                  Txn.write tx cells.(b) wb
                end)
          with
          | Ok () -> true
          | Error _ -> false)
    in
    report cluster c stats;
    (* conservation audit *)
    let reader =
      List.find
        (fun m -> (Cluster.machine cluster m).State.alive)
        (List.init c.machines Fun.id)
    in
    let total =
      Cluster.run_on cluster ~machine:reader (fun st ->
          match
            Api.run_retry st ~thread:0 (fun tx ->
                Array.fold_left
                  (fun acc a ->
                    acc + Int64.to_int (Bytes.get_int64_le (Txn.read tx a ~len:8) 0))
                  0 cells)
          with
          | Ok v -> v
          | Error e -> Fmt.failwith "audit: %a" Txn.pp_abort e)
    in
    Fmt.pr "@.audit: total=%d expected=%d — %s@." total (accounts * 1000)
      (if total = accounts * 1000 then "conserved" else "NOT CONSERVED!")
  in
  Cmd.v (Cmd.info "bank" ~doc:"Run the bank-transfer conservation workload.")
    Term.(const run $ common_term $ accounts)

let () =
  let doc = "FaRM reproduction: simulated distributed transactions with RDMA" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "farm-cli" ~doc) [ tatp_cmd; tpcc_cmd; kv_cmd; bank_cmd ]))
