(* farm-fuzz: deterministic fault-schedule fuzzing of the FaRM simulation.

     dune exec bin/farm_fuzz.exe -- --schedules 200 --seed 1 --jobs 8
     dune exec bin/farm_fuzz.exe -- --replay 4611686018427387904

   Each schedule runs a conserving bank + B-tree workload on a fresh
   cluster under a random timed fault script (crashes, restarts, power
   failures, partitions, lossy/slow links, lease stalls, clock skew), then
   heals, quiesces, and checks the committed history for strict
   serializability plus a battery of state invariants. Everything derives
   from integer seeds: a failing schedule prints its seed, and --replay
   reruns it with a byte-identical event trace. --jobs farms schedules out
   to worker domains; the report (progress lines, failure dumps, summary)
   is byte-identical whatever the job count, because outcomes are merged in
   seed order and printed only from the coordinating domain. *)

open Farm_sim
open Farm_fault
open Cmdliner

let opts_of ~machines ~cells ~workers ~duration_ms ~no_btree ~no_batching ~protocol
    ~perfetto ~gray =
  {
    Explorer.machines;
    cells;
    workers;
    duration = Time.ms duration_ms;
    btree = not no_btree;
    batching = not no_batching;
    protocol;
    record = true;
    perfetto;
    gray;
  }

(* Gray sweeps also gate graceful degradation: the SLO probes (no
   unexplained global commit stall, nothing parked past its timeout) run
   against every healed schedule. *)
let probe_of (opts : Explorer.opts) = if opts.Explorer.gray then Some Probes.gray else None

let run_explore ~opts ~seed ~schedules ~jobs ~verbose =
  let report =
    Explorer.sweep ~opts ?probe:(probe_of opts) ~jobs
      ~on_outcome:(fun ~index o ->
        if not (Explorer.ok o) then Fmt.pr "schedule %d: %a@." index Explorer.pp_outcome o
        else if verbose then Fmt.pr "schedule %d: %a@." index Explorer.pp_outcome o
        else if index mod 25 = 0 then Fmt.pr "... %d/%d schedules@." index schedules)
      ~base_seed:seed ~schedules ()
  in
  Fmt.pr "%d schedules, %d transactions committed, %d failures@."
    report.Explorer.schedules report.Explorer.total_committed
    (List.length report.Explorer.failures);
  List.iter
    (fun (o : Explorer.outcome) ->
      Fmt.pr "replay with: farm_fuzz --replay %d@." o.Explorer.seed)
    report.Explorer.failures;
  if report.Explorer.failures = [] then 0 else 1

let run_replay ~opts ~seed ~trace_flag ~perfetto_file =
  let o = Explorer.run_one ~opts ?probe:(probe_of opts) seed in
  List.iter (Fmt.pr "%s@.") o.Explorer.trace;
  Fmt.pr "%a@." Explorer.pp_outcome { o with Explorer.trace = []; Explorer.recorder = [] };
  if trace_flag then begin
    Fmt.pr "--- abort breakdown ---@.%a@."
      Fmt.(list ~sep:(any " ") (pair ~sep:(any "=") string int))
      o.Explorer.abort_causes;
    if o.Explorer.recorder <> [] then begin
      Fmt.pr "--- flight recorder (%d protocol events, merged across machines) ---@."
        (List.length o.Explorer.recorder);
      List.iter (Fmt.pr "%s@.") o.Explorer.recorder
    end
  end;
  (match (perfetto_file, o.Explorer.perfetto_json) with
  | Some file, Some json ->
      let oc = open_out file in
      output_string oc json;
      close_out oc;
      Fmt.pr "perfetto trace written to %s (open at ui.perfetto.dev)@." file
  | _ -> ());
  if Explorer.ok o then 0 else 1

let main seed schedules replay machines cells workers duration_ms no_btree no_batching
    protocol gray jobs verbose trace_flag perfetto_file =
  if machines < 3 then begin
    Fmt.epr "farm_fuzz: --machines must be at least 3 (every region needs f+1 = 3 replicas)@.";
    2
  end
  else if cells < 1 then begin
    Fmt.epr "farm_fuzz: --cells must be at least 1@.";
    2
  end
  else if jobs < 1 then begin
    Fmt.epr "farm_fuzz: --jobs must be at least 1@.";
    2
  end
  else begin
    let opts =
      opts_of ~machines ~cells ~workers ~duration_ms ~no_btree ~no_batching ~protocol
        ~perfetto:(perfetto_file <> None) ~gray
    in
    match replay with
    | Some s -> run_replay ~opts ~seed:s ~trace_flag ~perfetto_file
    | None ->
        if perfetto_file <> None then begin
          Fmt.epr "farm_fuzz: --perfetto requires --replay (one schedule, one trace)@.";
          2
        end
        else run_explore ~opts ~seed ~schedules ~jobs ~verbose
  end

let cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed for schedule derivation.") in
  let schedules =
    Arg.(value & opt int 50 & info [ "schedules"; "n" ] ~doc:"Number of schedules to explore.")
  in
  let replay =
    Arg.(
      value
      & opt (some int) None
      & info [ "replay" ]
          ~doc:"Replay one schedule seed (as printed by a failing run) and dump its trace.")
  in
  let machines = Arg.(value & opt int 6 & info [ "machines"; "m" ] ~doc:"Cluster size.") in
  let cells = Arg.(value & opt int 16 & info [ "cells" ] ~doc:"Bank cells.") in
  let workers = Arg.(value & opt int 2 & info [ "workers"; "w" ] ~doc:"Workers per machine.") in
  let duration_ms =
    Arg.(value & opt int 60 & info [ "duration"; "d" ] ~doc:"Workload window per schedule (ms).")
  in
  let no_btree = Arg.(value & flag & info [ "no-btree" ] ~doc:"Disable the B-tree side workload.") in
  let no_batching =
    Arg.(
      value & flag
      & info [ "no-batching" ]
          ~doc:"Run the unbatched (pre-doorbell-batching) commit pipeline.")
  in
  let protocol =
    let proto_conv =
      Arg.enum
        [
          ("baseline", Farm_core.Params.Validate_at_commit);
          ("snapshot", Farm_core.Params.Snapshot);
        ]
    in
    Arg.(
      value
      & opt proto_conv Farm_core.Params.Validate_at_commit
      & info [ "protocol" ] ~docv:"PROTO"
          ~doc:
            "Commit protocol variant: $(b,baseline) (validate-at-commit, the default) or \
             $(b,snapshot) (multi-version reads at a global-time snapshot; read-only \
             transactions commit locally without VALIDATE).")
  in
  let gray =
    Arg.(
      value & flag
      & info [ "gray" ]
          ~doc:
            "Draw schedules from the gray-failure family (slow/lossy NICs, asymmetric \
             partitions, CPU throttling, lease flapping) instead of the classic \
             crash/partition pool, and additionally gate every schedule on the SLO \
             probes: no global commit stall without an active suspicion, no \
             transaction parked past its timeout.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Domain.recommended_domain_count ())
      & info [ "jobs"; "j" ]
          ~doc:
            "Worker domains for the schedule sweep (default: this machine's recommended \
             domain count). The report is byte-identical for any value.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every schedule outcome.") in
  let trace_flag =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "With --replay: also dump the flight recorder (the last protocol events each \
             machine observed) and the abort-cause breakdown, even when the run passes.")
  in
  let perfetto_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "With --replay: capture a causal trace of the schedule and write it to $(docv) \
             as Chrome trace-event JSON (open at ui.perfetto.dev). Tracing never perturbs \
             the replay: the schedule's history is byte-identical with or without it.")
  in
  let term =
    Term.(
      const main $ seed $ schedules $ replay $ machines $ cells $ workers $ duration_ms
      $ no_btree $ no_batching $ protocol $ gray $ jobs $ verbose $ trace_flag
      $ perfetto_file)
  in
  Cmd.v (Cmd.info "farm_fuzz" ~doc:"Deterministic fault-schedule fuzzer for the FaRM simulation") term

let () = exit (Cmd.eval' cmd)
